package core

import (
	"bytes"
	"fmt"
	"slices"

	"locec/internal/graph"
	"locec/internal/logreg"
	"locec/internal/social"
)

// Export is the portable state of a completed pipeline run: everything a
// consumer needs to serve predictions — and to classify previously unseen
// communities — without retraining. It is the in-memory half of the
// offline/online split; internal/artifact gives it a durable, versioned,
// checksummed on-disk form (see docs/FORMATS.md).
//
// Edge arrays are parallel and ordered by ascending canonical edge key
// (which coincides with the graph's (U,V) edge order):
// Predictions[i] and Probabilities[i*Classes:(i+1)*Classes] belong to
// EdgeKeys[i].
type Export struct {
	// ClassifierName is the Phase II variant ("LoCEC-CNN", "LoCEC-XGB").
	ClassifierName string
	// Classes is the probability-vector width (social.NumLabels for the
	// shipped combiners).
	Classes int
	// Egos is the full Phase I+II output, one entry per node.
	Egos []*EgoResult
	// EdgeKeys lists every predicted edge's canonical key, ascending.
	EdgeKeys []uint64
	// Predictions holds the label per edge, parallel to EdgeKeys.
	Predictions []social.Label
	// Probabilities is one flat backing array of per-edge class
	// probability vectors, len(EdgeKeys)*Classes.
	Probabilities []float64
	// Model is the Phase II classifier's SaveModel blob (nil when the
	// classifier does not implement ModelPersister).
	Model []byte
	// Combiner is the trained Phase III logistic regression (nil under
	// the agreement-rule ablation).
	Combiner *logreg.Model
	// Times carries the original run's phase durations, so a consumer
	// restored from a snapshot can still report what training cost.
	Times PhaseTimes
}

// Export packages the result for the artifact store. It fails if the
// result has no predictions (the pipeline did not finish Phase III).
// The result's EdgeStore already keeps exactly the artifact's layout
// (ascending keys, parallel labels, one flat probability backing), so the
// edge arrays are three whole-slice clones — no per-edge map walk or key
// sort happens here anymore; the clones keep the export independent of
// the live store.
func (r *Result) Export() (*Export, error) {
	if r.Edges.Len() == 0 {
		return nil, fmt.Errorf("core: export: result has no predictions")
	}
	ex := &Export{
		ClassifierName: r.ClassifierName,
		Classes:        r.Edges.Classes(),
		Egos:           r.Egos,
		EdgeKeys:       slices.Clone(r.Edges.Keys()),
		Predictions:    slices.Clone(r.Edges.Labels()),
		Probabilities:  slices.Clone(r.Edges.ProbsFlat()),
		Combiner:       r.Combiner,
		Times:          r.Times,
	}
	if mp, ok := r.Classifier.(ModelPersister); ok {
		var buf bytes.Buffer
		if err := mp.SaveModel(&buf); err != nil {
			return nil, fmt.Errorf("core: export: %w", err)
		}
		ex.Model = buf.Bytes()
	}
	return ex, nil
}

// Validate checks the export's internal shape invariants; RunFromArtifact
// calls it so a hand-built or corrupted export fails loudly.
func (ex *Export) Validate() error {
	if ex.Classes < 2 {
		return fmt.Errorf("core: export: %d classes", ex.Classes)
	}
	if len(ex.Predictions) != len(ex.EdgeKeys) {
		return fmt.Errorf("core: export: %d predictions for %d edges", len(ex.Predictions), len(ex.EdgeKeys))
	}
	if len(ex.Probabilities) != len(ex.EdgeKeys)*ex.Classes {
		return fmt.Errorf("core: export: %d probabilities for %d edges x %d classes",
			len(ex.Probabilities), len(ex.EdgeKeys), ex.Classes)
	}
	for i := 1; i < len(ex.EdgeKeys); i++ {
		if ex.EdgeKeys[i-1] >= ex.EdgeKeys[i] {
			return fmt.Errorf("core: export: edge keys not strictly increasing at %d", i)
		}
	}
	for i, er := range ex.Egos {
		if er == nil {
			return fmt.Errorf("core: export: nil ego result at node %d", i)
		}
		// Consumers index Egos by node ID (Combine, NodeCommunities, the
		// /v1/communities handler), so position and Ego must agree — an
		// out-of-order artifact would otherwise serve the wrong node's
		// communities with no error.
		if er.Ego != graph.NodeID(i) {
			return fmt.Errorf("core: export: ego result at index %d belongs to node %d", i, er.Ego)
		}
	}
	return nil
}

// RunFromArtifact is the import half of the Export seam: it reconstructs
// a complete *Result from a decoded artifact export, skipping all three
// phases and every training step. When the export carries a model blob,
// the matching classifier type is rebuilt, installed on the pipeline (so
// later Run calls reuse the loaded weights) and attached to the Result.
// Restart cost becomes O(deserialize) instead of O(train) — the paper's
// offline/online split (Section V-D).
func (p *Pipeline) RunFromArtifact(ex *Export) (*Result, error) {
	if ex == nil {
		return nil, fmt.Errorf("core: run from artifact: nil export")
	}
	if err := ex.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		ClassifierName: ex.ClassifierName,
		Egos:           ex.Egos,
		Combiner:       ex.Combiner,
		Times:          ex.Times,
	}
	for _, er := range ex.Egos {
		res.Communities = append(res.Communities, er.Comms...)
	}
	// Validate vouched for ascending keys and parallel shapes, so the
	// store wraps the artifact arrays directly — import is O(1) in the
	// edge count where it used to build two maps.
	es, err := NewEdgeStore(ex.EdgeKeys, ex.Predictions, ex.Probabilities, ex.Classes)
	if err != nil {
		return nil, err
	}
	res.Edges = es
	if len(ex.Model) > 0 {
		cl, err := classifierForName(ex.ClassifierName)
		if err != nil {
			return nil, err
		}
		mp, ok := cl.(ModelPersister)
		if !ok {
			return nil, fmt.Errorf("core: classifier %q cannot load a model", ex.ClassifierName)
		}
		if err := mp.LoadModel(bytes.NewReader(ex.Model)); err != nil {
			return nil, err
		}
		p.cfg.Classifier = cl
		res.Classifier = cl
	}
	return res, nil
}
