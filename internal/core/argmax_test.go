package core

import (
	"math"
	"testing"

	"locec/internal/graph"
	"locec/internal/social"
)

func TestArgmaxDegenerate(t *testing.T) {
	cases := []struct {
		name string
		x    []float64
		want int
	}{
		{"empty", nil, 0},
		{"all-zero", []float64{0, 0, 0}, 0},
		{"tie-lowest-index", []float64{0.4, 0.4, 0.2}, 0},
		{"tie-interior", []float64{0.1, 0.45, 0.45}, 1},
		{"single", []float64{0.3}, 0},
		{"plain", []float64{0.1, 0.2, 0.7}, 2},
	}
	for _, c := range cases {
		if got := Argmax(c.x); got != c.want {
			t.Errorf("%s: Argmax(%v) = %d, want %d", c.name, c.x, got, c.want)
		}
	}
}

// agreementEgo builds a one-friend ego result whose single community
// carries the given probability vector and tightness.
func agreementEgo(ego, friend graph.NodeID, probs []float64, tight float64) *EgoResult {
	c := &LocalCommunity{
		Ego:       ego,
		Members:   []graph.NodeID{friend},
		Tightness: []float64{tight},
		Probs:     probs,
	}
	return &EgoResult{
		Ego:       ego,
		Members:   []graph.NodeID{friend},
		CommIdx:   []int{0},
		Tightness: []float64{tight},
		Comms:     []*LocalCommunity{c},
	}
}

// runAgreement pushes the single edge {0,1} through the agreement rule
// with the two endpoint communities configured as given.
func runAgreement(t *testing.T, probsU, probsV []float64, tu, tv float64) (social.Label, []float64) {
	t.Helper()
	classes := social.NumLabels
	res := &Result{Egos: []*EgoResult{
		agreementEgo(0, 1, probsU, tu),
		agreementEgo(1, 0, probsV, tv),
	}}
	edges := []graph.Edge{{U: 0, V: 1}}
	preds := make([]social.Label, 1)
	probsFlat := make([]float64, classes)
	(&Pipeline{}).predictEdgesByAgreement(res, edges, preds, probsFlat, classes)
	return preds[0], probsFlat
}

func TestAgreementRuleEndpointsAgree(t *testing.T) {
	// Both communities argmax to class 1: the rule must take it directly,
	// whatever the blend would say.
	l, _ := runAgreement(t, []float64{0.1, 0.9, 0}, []float64{0.4, 0.6, 0}, 1, 1)
	if l != social.Label(1) {
		t.Fatalf("agreeing endpoints: label = %v, want %v", l, social.Label(1))
	}
}

func TestAgreementBlendDisagreement(t *testing.T) {
	// Disagreeing endpoints: tightness-weighted sum, renormalized.
	// blended = 1*{0.6,0.4,0} + 3*{0,1,0} = {0.6,3.4,0}, total 4.
	l, probs := runAgreement(t, []float64{0.6, 0.4, 0}, []float64{0, 1, 0}, 1, 3)
	if l != social.Label(1) {
		t.Fatalf("blend: label = %v, want %v", l, social.Label(1))
	}
	want := []float64{0.15, 0.85, 0}
	for c := range want {
		if math.Abs(probs[c]-want[c]) > 1e-12 {
			t.Fatalf("blend: probs = %v, want %v", probs, want)
		}
	}
}

func TestAgreementBlendZeroTotal(t *testing.T) {
	// Zero tightness on both endpoints makes the blended vector all-zero
	// (total == 0). The divide is skipped — the output must stay finite
	// (no NaN from 0/0) and the tie resolves to the lowest class index.
	l, probs := runAgreement(t, []float64{0, 1, 0}, []float64{0, 0, 1}, 0, 0)
	if l != social.Label(0) {
		t.Fatalf("zero-total blend: label = %v, want %v", l, social.Label(0))
	}
	for c, p := range probs {
		if p != 0 {
			t.Fatalf("zero-total blend: probs[%d] = %v, want 0", c, p)
		}
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("zero-total blend: probs[%d] = %v, not finite", c, p)
		}
	}
}

func TestAgreementBlendAllZeroProbs(t *testing.T) {
	// All-zero probability vectors on both sides: both endpoint argmaxes
	// degenerate to class 0, so the endpoints "agree" and the rule labels
	// the edge class 0 without dividing by the zero total.
	l, probs := runAgreement(t, []float64{0, 0, 0}, []float64{0, 0, 0}, 0.5, 0.5)
	if l != social.Label(0) {
		t.Fatalf("all-zero probs: label = %v, want %v", l, social.Label(0))
	}
	for c, p := range probs {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("all-zero probs: probs[%d] = %v, not finite", c, p)
		}
	}
}
