package iodata

import (
	"bytes"
	"strings"
	"testing"

	"locec/internal/graph"
	"locec/internal/social"
	"locec/internal/wechat"
)

func TestRoundTrip(t *testing.T) {
	net, err := wechat.Generate(wechat.DefaultConfig(200, 3))
	if err != nil {
		t.Fatal(err)
	}
	net.RunSurvey(0.3, 1)
	doc := FromDataset(net.Dataset, net.EdgeSecond, net.CommonGroups)
	var buf bytes.Buffer
	if err := doc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := decoded.ToDataset()
	if err != nil {
		t.Fatal(err)
	}
	if ds.G.NumNodes() != net.Dataset.G.NumNodes() || ds.G.NumEdges() != net.Dataset.G.NumEdges() {
		t.Fatalf("graph mismatch: %d/%d vs %d/%d",
			ds.G.NumNodes(), ds.G.NumEdges(), net.Dataset.G.NumNodes(), net.Dataset.G.NumEdges())
	}
	for k, l := range net.Dataset.TrueLabels {
		if ds.TrueLabels[k] != l {
			t.Fatalf("label mismatch at %v", graph.EdgeFromKey(k))
		}
	}
	if len(ds.Revealed) != len(net.Dataset.Revealed) {
		t.Fatalf("revealed mismatch: %d vs %d", len(ds.Revealed), len(net.Dataset.Revealed))
	}
	for k, iv := range net.Dataset.Interactions {
		got, ok := ds.Interactions[k]
		if !ok {
			t.Fatalf("missing interactions at %v", graph.EdgeFromKey(k))
		}
		for d := range iv {
			if got[d] != iv[d] {
				t.Fatalf("interaction mismatch at %v dim %d", graph.EdgeFromKey(k), d)
			}
		}
	}
}

func TestDecodeRejectsBadDocuments(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"bad json", `{"users": [`},
		{"unknown label", `{"users":[{"id":0,"features":[1]},{"id":1,"features":[1]}],
			"edges":[{"u":0,"v":1,"label":"Frenemy"}]}`},
		{"self loop", `{"users":[{"id":0,"features":[1]}],
			"edges":[{"u":0,"v":0,"label":"Colleague"}]}`},
		{"ragged features", `{"users":[{"id":0,"features":[1]},{"id":1,"features":[1,2]}],
			"edges":[{"u":0,"v":1,"label":"Colleague"}]}`},
		{"wrong interaction width", `{"users":[{"id":0,"features":[1]},{"id":1,"features":[1]}],
			"edges":[{"u":0,"v":1,"label":"Colleague","interactions":[1,2]}]}`},
		{"missing user record", `{"users":[{"id":1,"features":[1]},{"id":1,"features":[1]}],
			"edges":[]}`},
		{"empty", `{}`},
	}
	for _, c := range cases {
		doc, err := Decode(strings.NewReader(c.doc))
		if err != nil {
			continue // decode-level rejection is fine
		}
		if _, err := doc.ToDataset(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseLabelCoversAll(t *testing.T) {
	for _, l := range []social.Label{social.Colleague, social.Family, social.Schoolmate, social.Other} {
		got, err := parseLabel(l.String())
		if err != nil || got != l {
			t.Fatalf("parseLabel(%q) = %v, %v", l.String(), got, err)
		}
	}
}

func TestRevealedFlagSurvivesRoundTrip(t *testing.T) {
	ds := &social.Dataset{}
	b := graph.NewBuilder(3)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	ds.G = b.Build()
	ds.UserFeatures = [][]float64{{1}, {1}, {1}}
	k01 := (graph.Edge{U: 0, V: 1}).Key()
	k12 := (graph.Edge{U: 1, V: 2}).Key()
	ds.TrueLabels = map[uint64]social.Label{k01: social.Family, k12: social.Colleague}
	ds.Interactions = map[uint64][]float64{}
	ds.Revealed = map[uint64]bool{k01: true}
	doc := FromDataset(ds, nil, nil)
	var buf bytes.Buffer
	if err := doc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := dec.ToDataset()
	if err != nil {
		t.Fatal(err)
	}
	if !ds2.Revealed[k01] || ds2.Revealed[k12] {
		t.Fatalf("revealed flags wrong: %v", ds2.Revealed)
	}
}
