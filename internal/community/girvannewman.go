// Package community implements the community detection algorithms used in
// LoCEC Phase I: the Girvan–Newman divisive algorithm (the paper's choice,
// Section IV-A) driven by Brandes edge betweenness with modularity-based
// best-cut selection, and an asynchronous label-propagation detector used
// for ablation studies.
package community

import (
	"sort"

	"locec/internal/graph"
)

// Partition assigns every node of a graph to exactly one community.
type Partition struct {
	// Assign maps node ID -> community index in [0, len(Comms)).
	Assign []int
	// Comms lists the members of each community, sorted ascending.
	Comms [][]graph.NodeID
	// Q is the Newman modularity of this partition on the input graph.
	Q float64
}

// NumCommunities returns the number of communities.
func (p *Partition) NumCommunities() int { return len(p.Comms) }

// Options tunes the Girvan–Newman run.
type Options struct {
	// MaxRemovals caps the number of edge-removal rounds; 0 means no cap
	// (run until the graph is edgeless, examining the full dendrogram).
	MaxRemovals int
	// Patience stops the run after this many consecutive rounds without a
	// modularity improvement; 0 means never stop early. Ego networks are
	// small, so the exact run is affordable; large graphs should set this.
	Patience int
}

// GirvanNewman detects communities by repeatedly removing the edge with the
// highest betweenness (Girvan & Newman 2002) and returning the connected-
// component partition with the highest modularity seen during the process.
//
// The input graph is not modified. Ties in betweenness are removed together
// in one round, which both accelerates the run and makes it deterministic.
func GirvanNewman(g *graph.Graph, opt Options) *Partition {
	n := g.NumNodes()
	if n == 0 {
		return &Partition{Assign: []int{}, Comms: [][]graph.NodeID{}}
	}
	// Mutable adjacency copy (sorted slices; removals preserve order).
	adj := make([][]graph.NodeID, n)
	for u := 0; u < n; u++ {
		ns := g.Neighbors(graph.NodeID(u))
		adj[u] = append([]graph.NodeID(nil), ns...)
	}
	remaining := g.NumEdges()

	best := partitionFromAdj(g, adj)
	bestQ := best.Q
	noImprove := 0
	rounds := 0

	bc := newBetweennessCalc(n)
	for remaining > 0 {
		if opt.MaxRemovals > 0 && rounds >= opt.MaxRemovals {
			break
		}
		rounds++
		eb := bc.edgeBetweenness(adj)
		// Find the maximum and remove every edge within a relative epsilon
		// of it (handles exact symmetric ties deterministically).
		maxB := 0.0
		for _, b := range eb {
			if b > maxB {
				maxB = b
			}
		}
		if maxB == 0 {
			break // only isolated vertices remain
		}
		thresh := maxB * (1 - 1e-9)
		var doomed []graph.Edge
		for k, b := range eb {
			if b >= thresh {
				doomed = append(doomed, graph.EdgeFromKey(k))
			}
		}
		sort.Slice(doomed, func(i, j int) bool {
			if doomed[i].U != doomed[j].U {
				return doomed[i].U < doomed[j].U
			}
			return doomed[i].V < doomed[j].V
		})
		for _, e := range doomed {
			removeEdge(adj, e.U, e.V)
			remaining--
		}
		p := partitionFromAdj(g, adj)
		if p.Q > bestQ+1e-12 {
			bestQ = p.Q
			best = p
			noImprove = 0
		} else {
			noImprove++
			if opt.Patience > 0 && noImprove >= opt.Patience {
				break
			}
		}
	}
	return best
}

func removeEdge(adj [][]graph.NodeID, u, v graph.NodeID) {
	adj[u] = removeFromSorted(adj[u], v)
	adj[v] = removeFromSorted(adj[v], u)
}

func removeFromSorted(s []graph.NodeID, v graph.NodeID) []graph.NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// partitionFromAdj labels connected components of the working adjacency and
// scores them with the modularity of the ORIGINAL graph g.
func partitionFromAdj(g *graph.Graph, adj [][]graph.NodeID) *Partition {
	n := len(adj)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	count := 0
	stack := make([]graph.NodeID, 0, 64)
	for s := 0; s < n; s++ {
		if assign[s] != -1 {
			continue
		}
		assign[s] = count
		stack = append(stack[:0], graph.NodeID(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[v] {
				if assign[w] == -1 {
					assign[w] = count
					stack = append(stack, w)
				}
			}
		}
		count++
	}
	comms := make([][]graph.NodeID, count)
	for v := 0; v < n; v++ {
		c := assign[v]
		comms[c] = append(comms[c], graph.NodeID(v))
	}
	return &Partition{Assign: assign, Comms: comms, Q: Modularity(g, assign)}
}

// Modularity computes Newman modularity Q of the given assignment on g:
// Q = sum_c [ m_c/m - (d_c/2m)^2 ] where m_c is the number of intra-
// community edges and d_c the total degree of community c.
func Modularity(g *graph.Graph, assign []int) float64 {
	m := g.NumEdges()
	if m == 0 {
		return 0
	}
	maxC := -1
	for _, c := range assign {
		if c > maxC {
			maxC = c
		}
	}
	intra := make([]float64, maxC+1)
	deg := make([]float64, maxC+1)
	g.ForEachEdge(func(u, v graph.NodeID) {
		if assign[u] == assign[v] {
			intra[assign[u]]++
		}
	})
	for u := 0; u < g.NumNodes(); u++ {
		deg[assign[u]] += float64(g.Degree(graph.NodeID(u)))
	}
	q := 0.0
	m2 := 2 * float64(m)
	for c := range intra {
		q += intra[c]/float64(m) - (deg[c]/m2)*(deg[c]/m2)
	}
	return q
}

// betweennessCalc holds reusable scratch buffers for Brandes' algorithm so
// repeated rounds on the same graph avoid reallocations.
type betweennessCalc struct {
	dist  []int
	sigma []float64
	delta []float64
	queue []graph.NodeID
	order []graph.NodeID
	preds [][]graph.NodeID
}

func newBetweennessCalc(n int) *betweennessCalc {
	return &betweennessCalc{
		dist:  make([]int, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		queue: make([]graph.NodeID, 0, n),
		order: make([]graph.NodeID, 0, n),
		preds: make([][]graph.NodeID, n),
	}
}

// edgeBetweenness computes unweighted shortest-path edge betweenness for the
// working adjacency (Brandes 2001, edge variant). Keys are canonical edge
// keys; values are summed over all source nodes (each unordered pair is
// counted twice, which is irrelevant for ranking).
func (bc *betweennessCalc) edgeBetweenness(adj [][]graph.NodeID) map[uint64]float64 {
	n := len(adj)
	out := make(map[uint64]float64, n*2)
	for s := 0; s < n; s++ {
		if len(adj[s]) == 0 {
			continue
		}
		// Init per-source state.
		for i := 0; i < n; i++ {
			bc.dist[i] = -1
			bc.sigma[i] = 0
			bc.delta[i] = 0
			bc.preds[i] = bc.preds[i][:0]
		}
		bc.queue = bc.queue[:0]
		bc.order = bc.order[:0]
		bc.dist[s] = 0
		bc.sigma[s] = 1
		bc.queue = append(bc.queue, graph.NodeID(s))
		for qi := 0; qi < len(bc.queue); qi++ {
			v := bc.queue[qi]
			bc.order = append(bc.order, v)
			for _, w := range adj[v] {
				if bc.dist[w] < 0 {
					bc.dist[w] = bc.dist[v] + 1
					bc.queue = append(bc.queue, w)
				}
				if bc.dist[w] == bc.dist[v]+1 {
					bc.sigma[w] += bc.sigma[v]
					bc.preds[w] = append(bc.preds[w], v)
				}
			}
		}
		// Dependency accumulation in reverse BFS order.
		for i := len(bc.order) - 1; i >= 0; i-- {
			w := bc.order[i]
			for _, v := range bc.preds[w] {
				c := bc.sigma[v] / bc.sigma[w] * (1 + bc.delta[w])
				bc.delta[v] += c
				out[graph.Edge{U: v, V: w}.Key()] += c
			}
		}
	}
	return out
}

// EdgeBetweenness computes edge betweenness on an immutable graph. Exposed
// for tests and for callers who want raw centrality scores.
func EdgeBetweenness(g *graph.Graph) map[uint64]float64 {
	n := g.NumNodes()
	adj := make([][]graph.NodeID, n)
	for u := 0; u < n; u++ {
		adj[u] = g.Neighbors(graph.NodeID(u))
	}
	return newBetweennessCalc(n).edgeBetweenness(adj)
}
