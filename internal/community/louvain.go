package community

import (
	"math/rand"

	"locec/internal/graph"
)

// Louvain detects communities by greedy modularity optimization (Blondel
// et al. 2008): repeated local-move passes followed by graph aggregation.
// It is far faster than Girvan–Newman on large ego networks and serves as
// the third Phase I ablation detector (the paper ships Girvan–Newman).
//
// The implementation is single-threaded and deterministic: node visit
// order is shuffled once per pass from the seed, and ties break toward the
// smallest community index.
func Louvain(g *graph.Graph, seed int64) *Partition {
	n := g.NumNodes()
	if n == 0 {
		return &Partition{Assign: []int{}, Comms: [][]graph.NodeID{}}
	}
	// Working multigraph: adjacency with weights, plus self-loop weights
	// accumulated during aggregation.
	type wedge struct {
		to graph.NodeID
		w  float64
	}
	adj := make([][]wedge, n)
	selfW := make([]float64, n)
	g.ForEachEdge(func(u, v graph.NodeID) {
		adj[u] = append(adj[u], wedge{v, 1})
		adj[v] = append(adj[v], wedge{u, 1})
	})
	m2 := 2.0 * float64(g.NumEdges()) // total weight ×2
	if m2 == 0 {
		// Edgeless: every node its own community.
		assign := make([]int, n)
		comms := make([][]graph.NodeID, n)
		for i := range assign {
			assign[i] = i
			comms[i] = []graph.NodeID{graph.NodeID(i)}
		}
		return &Partition{Assign: assign, Comms: comms}
	}

	// membership[v] on the CURRENT level; levelMap maps current-level
	// super-nodes back to original nodes.
	members := make([][]graph.NodeID, n)
	for i := range members {
		members[i] = []graph.NodeID{graph.NodeID(i)}
	}
	rng := rand.New(rand.NewSource(seed))

	for level := 0; level < 16; level++ {
		cur := len(adj)
		comm := make([]int, cur)
		commTot := make([]float64, cur) // total degree weight per community
		deg := make([]float64, cur)
		for v := 0; v < cur; v++ {
			comm[v] = v
			for _, e := range adj[v] {
				deg[v] += e.w
			}
			deg[v] += 2 * selfW[v]
			commTot[v] = deg[v]
		}
		order := rng.Perm(cur)
		improved := false
		for pass := 0; pass < 8; pass++ {
			moved := false
			for _, v := range order {
				// Weight from v to each neighboring community.
				wTo := map[int]float64{}
				for _, e := range adj[v] {
					wTo[comm[e.to]] += e.w
				}
				cv := comm[v]
				commTot[cv] -= deg[v]
				bestC, bestGain := cv, 0.0
				for c, w := range wTo {
					// ΔQ of moving v into c (standard local-move gain).
					gain := w - commTot[c]*deg[v]/m2
					if gain > bestGain+1e-12 || (gain > bestGain-1e-12 && c < bestC && gain > 0) {
						bestGain = gain
						bestC = c
					}
				}
				// Compare against staying.
				stay := wTo[cv] - commTot[cv]*deg[v]/m2
				if bestC != cv && bestGain > stay+1e-12 {
					comm[v] = bestC
					moved = true
					improved = true
				}
				commTot[comm[v]] += deg[v]
			}
			if !moved {
				break
			}
		}
		if !improved {
			break
		}
		// Renumber communities densely.
		remap := map[int]int{}
		for _, c := range comm {
			if _, ok := remap[c]; !ok {
				remap[c] = len(remap)
			}
		}
		nc := len(remap)
		// Aggregate members.
		newMembers := make([][]graph.NodeID, nc)
		for v := 0; v < cur; v++ {
			c := remap[comm[v]]
			newMembers[c] = append(newMembers[c], members[v]...)
		}
		// Aggregate graph.
		newSelf := make([]float64, nc)
		agg := make([]map[graph.NodeID]float64, nc)
		for i := range agg {
			agg[i] = map[graph.NodeID]float64{}
		}
		for v := 0; v < cur; v++ {
			cv := remap[comm[v]]
			newSelf[cv] += selfW[v]
			for _, e := range adj[v] {
				cu := remap[comm[e.to]]
				if cu == cv {
					newSelf[cv] += e.w / 2 // each intra edge seen twice
				} else {
					agg[cv][graph.NodeID(cu)] += e.w
				}
			}
		}
		newAdj := make([][]wedge, nc)
		for c := 0; c < nc; c++ {
			for to, w := range agg[c] {
				newAdj[c] = append(newAdj[c], wedge{to, w})
			}
		}
		adj = newAdj
		selfW = newSelf
		members = newMembers
		if nc == cur {
			break
		}
	}

	assign := make([]int, n)
	comms := make([][]graph.NodeID, len(members))
	for c, ms := range members {
		sorted := append([]graph.NodeID(nil), ms...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		comms[c] = sorted
		for _, v := range sorted {
			assign[v] = c
		}
	}
	return &Partition{Assign: assign, Comms: comms, Q: Modularity(g, assign)}
}
