package community

import (
	"math/rand"
	"sort"

	"locec/internal/graph"
)

// LabelPropagation detects communities with the asynchronous label
// propagation algorithm (Raghavan et al. 2007). It is much faster than
// Girvan–Newman and is used in the repository's ablation study comparing
// Phase I detectors; the paper itself uses Girvan–Newman.
//
// The node visit order is shuffled per round with the given seed, and ties
// are broken toward the smallest label, making the run deterministic.
func LabelPropagation(g *graph.Graph, maxRounds int, seed int64) *Partition {
	n := g.NumNodes()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	if maxRounds <= 0 {
		maxRounds = 20
	}
	rng := rand.New(rand.NewSource(seed))
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	counts := make(map[int]int)
	for round := 0; round < maxRounds; round++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		changed := false
		for _, u := range order {
			ns := g.Neighbors(graph.NodeID(u))
			if len(ns) == 0 {
				continue
			}
			for k := range counts {
				delete(counts, k)
			}
			for _, v := range ns {
				counts[labels[v]]++
			}
			bestLabel, bestCount := labels[u], 0
			// Deterministic tie-break: smallest label among the most frequent.
			keys := make([]int, 0, len(counts))
			for k := range counts {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			for _, k := range keys {
				if counts[k] > bestCount {
					bestCount = counts[k]
					bestLabel = k
				}
			}
			if bestLabel != labels[u] {
				labels[u] = bestLabel
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return canonicalize(g, labels)
}

// canonicalize renumbers arbitrary labels to dense community indices and
// builds the Partition with modularity.
func canonicalize(g *graph.Graph, labels []int) *Partition {
	remap := make(map[int]int)
	assign := make([]int, len(labels))
	for v, l := range labels {
		idx, ok := remap[l]
		if !ok {
			idx = len(remap)
			remap[l] = idx
		}
		assign[v] = idx
	}
	comms := make([][]graph.NodeID, len(remap))
	for v := range assign {
		c := assign[v]
		comms[c] = append(comms[c], graph.NodeID(v))
	}
	return &Partition{Assign: assign, Comms: comms, Q: Modularity(g, assign)}
}
