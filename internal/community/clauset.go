package community

import (
	"slices"

	"locec/internal/graph"
)

// growClauset implements Clauset's local-modularity community growth
// ("Finding local community structure in networks", Phys. Rev. E 72,
// 026132, 2005). Starting from C = {seed}, each step tentatively absorbs
// every frontier vertex and keeps the one that most improves the local
// modularity
//
//	R = I / T
//
// where B ⊆ C is the boundary (members with at least one neighbor outside
// C), T counts edges with at least one endpoint in B and I counts the
// subset of those whose both endpoints lie in C. Growth stops when no
// frontier vertex improves R — the boundary has stabilized — or when the
// community hits MaxSize. Ties break toward the smallest node ID, so the
// result is deterministic.
func growClauset(t *scanTracker, seed graph.NodeID, opt LocalOptions) []graph.NodeID {
	n := t.g.NumNodes()
	inC := make([]bool, n)
	inC[seed] = true
	members := []graph.NodeID{seed}
	queued := make([]bool, n) // frontier membership (stays set once absorbed)
	var frontier []graph.NodeID
	for _, v := range t.neighbors(seed) {
		if !queued[v] {
			queued[v] = true
			frontier = append(frontier, v)
		}
	}
	maxSize := opt.MaxSize
	if maxSize <= 0 || maxSize > n {
		maxSize = n
	}
	bestR := clausetR(t, inC, members)
	for len(members) < maxSize && len(frontier) > 0 {
		slices.Sort(frontier)
		bestIdx := -1
		bestTrial := bestR
		for i, c := range frontier {
			inC[c] = true
			members = append(members, c)
			r := clausetR(t, inC, members)
			members = members[:len(members)-1]
			inC[c] = false
			if r > bestTrial+1e-12 {
				bestTrial, bestIdx = r, i
			}
		}
		if bestIdx < 0 {
			break
		}
		c := frontier[bestIdx]
		inC[c] = true
		members = append(members, c)
		bestR = bestTrial
		frontier = slices.Delete(frontier, bestIdx, bestIdx+1)
		for _, v := range t.neighbors(c) {
			if !inC[v] && !queued[v] {
				queued[v] = true
				frontier = append(frontier, v)
			}
		}
	}
	return members
}

// clausetR computes the local modularity R = I/T of the community marked
// by inC (whose members list is passed to avoid a full scan). A community
// with an empty boundary fully encloses its component; R is 1 by
// convention there, so growth never stalls one step short of absorbing a
// whole component.
func clausetR(t *scanTracker, inC []bool, members []graph.NodeID) float64 {
	isB := make([]bool, len(inC))
	var boundary []graph.NodeID
	for _, u := range members {
		for _, v := range t.neighbors(u) {
			if !inC[v] {
				isB[u] = true
				boundary = append(boundary, u)
				break
			}
		}
	}
	T, I := 0, 0
	for _, u := range boundary {
		for _, v := range t.neighbors(u) {
			if isB[v] && v < u {
				continue // boundary-boundary edge already counted from v
			}
			T++
			if inC[v] {
				I++
			}
		}
	}
	if T == 0 {
		return 1
	}
	return float64(I) / float64(T)
}
