package community

import (
	"math"
	"slices"

	"locec/internal/graph"
)

// growLemon implements a simplified LEMON — Li, Huang, Chen & Zhang,
// "Uncovering the small community structure in large networks: a local
// spectral approach" (WWW 2015) — sized for the ego networks LoCEC runs
// it on:
//
//  1. a short lazy random walk diffuses probability mass from the seed,
//     truncating support to the walk's reach (the "local" part);
//  2. successive walk iterates span a small Krylov subspace approximating
//     the leading local eigenvectors;
//  3. a projected-subgradient pass looks for the sparsest nonnegative
//     indicator in that subspace with unit mass on the seed (the min
//     one-norm program of the paper, solved approximately);
//  4. a conductance sweep over the indicator's ranking picks the
//     community, trimmed to the connected component containing the seed.
//
// Everything is deterministic: support is kept sorted so floating-point
// accumulation order is fixed, and ties in the sweep break by node ID.
func growLemon(t *scanTracker, seed graph.NodeID, opt LocalOptions) []graph.NodeID {
	n := t.g.NumNodes()
	if t.degree(seed) == 0 {
		return []graph.NodeID{seed}
	}
	maxSize := opt.MaxSize
	if maxSize <= 0 || maxSize > n {
		maxSize = n
	}

	// Lazy walk state: p over the whole (small) ego graph, with a sorted
	// support list so iteration order — and hence float summation — is
	// deterministic and every touched node is scan-tracked.
	p := make([]float64, n)
	p[seed] = 1
	inSupport := make([]bool, n)
	inSupport[seed] = true
	support := []graph.NodeID{seed}
	step := func(x []float64) []float64 {
		y := make([]float64, n)
		var fresh []graph.NodeID
		for _, u := range support {
			if x[u] == 0 {
				continue
			}
			nb := t.neighbors(u)
			y[u] += x[u] / 2
			w := x[u] / (2 * float64(len(nb)))
			for _, v := range nb {
				y[v] += w
				if !inSupport[v] {
					inSupport[v] = true
					fresh = append(fresh, v)
				}
			}
		}
		if len(fresh) > 0 {
			support = append(support, fresh...)
			slices.Sort(support)
		}
		return y
	}
	for i := 0; i < opt.WalkSteps; i++ {
		p = step(p)
	}

	// Krylov subspace from successive iterates, orthonormalized by
	// modified Gram–Schmidt. Near-dependent iterates are dropped.
	var V [][]float64
	cur := slices.Clone(p)
	for len(V) < opt.SubspaceDim {
		q := slices.Clone(cur)
		for _, b := range V {
			d := dot(q, b, support)
			axpy(q, b, -d, support)
		}
		norm := math.Sqrt(dot(q, q, support))
		if norm < 1e-12 {
			break
		}
		scale(q, 1/norm, support)
		V = append(V, q)
		cur = step(cur)
	}

	// Min one-norm refinement: start from the diffusion vector projected
	// into the subspace, take subgradient steps against ||y||_1, project
	// back into span(V), clip negatives and renormalize the seed entry.
	// If the program degenerates (seed mass vanishes) the raw diffusion
	// scores stand in — the sweep below still yields a valid community.
	score := p
	if len(V) > 0 {
		y := project(V, p, n, support)
		ok := true
		for it := 0; it < opt.MinNormIters && ok; it++ {
			g := make([]float64, n)
			for _, u := range support {
				if y[u] > 0 {
					g[u] = 1
				} else if y[u] < 0 {
					g[u] = -1
				}
			}
			gp := project(V, g, n, support)
			eta := 0.05 / float64(it+1)
			for _, u := range support {
				y[u] -= eta * gp[u]
			}
			y = project(V, y, n, support)
			if y[seed] <= 1e-9 {
				ok = false
				break
			}
			inv := 1 / y[seed]
			for _, u := range support {
				y[u] *= inv
			}
		}
		if ok && y[seed] > 1e-9 {
			for _, u := range support {
				if y[u] < 0 {
					y[u] = 0
				}
			}
			score = y
		}
	}

	// Conductance sweep over the score ranking: take the prefix (among
	// prefixes containing the seed) minimizing cut(S)/vol(S).
	type ranked struct {
		v graph.NodeID
		s float64
	}
	var order []ranked
	for _, u := range support {
		if score[u] > 0 {
			order = append(order, ranked{u, score[u]})
		}
	}
	slices.SortFunc(order, func(a, b ranked) int {
		switch {
		case a.s > b.s:
			return -1
		case a.s < b.s:
			return 1
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return 0
		}
	})
	if len(order) == 0 {
		return []graph.NodeID{seed}
	}
	inS := make([]bool, n)
	cut, vol := 0, 0
	bestPhi := math.Inf(1)
	bestK := 0
	haveSeed := false
	for k, r := range order {
		if k >= maxSize {
			break
		}
		nb := t.neighbors(r.v)
		vol += len(nb)
		for _, v := range nb {
			if inS[v] {
				cut--
			} else {
				cut++
			}
		}
		inS[r.v] = true
		if r.v == seed {
			haveSeed = true
		}
		if haveSeed && vol > 0 {
			phi := float64(cut) / float64(vol)
			if phi < bestPhi-1e-12 {
				bestPhi = phi
				bestK = k + 1
			}
		}
	}
	if bestK == 0 {
		return []graph.NodeID{seed}
	}
	members := make([]graph.NodeID, 0, bestK)
	inComm := make([]bool, n)
	for _, r := range order[:bestK] {
		members = append(members, r.v)
		inComm[r.v] = true
	}
	return seedComponent(t, seed, members, inComm)
}

// seedComponent trims a candidate member set to the connected component
// containing the seed — sweep prefixes can be disconnected, and a local
// community must not be.
func seedComponent(t *scanTracker, seed graph.NodeID, members []graph.NodeID, inComm []bool) []graph.NodeID {
	keep := make([]bool, len(inComm))
	keep[seed] = true
	queue := []graph.NodeID{seed}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range t.neighbors(u) {
			if inComm[v] && !keep[v] {
				keep[v] = true
				queue = append(queue, v)
			}
		}
	}
	out := members[:0]
	for _, u := range members {
		if keep[u] {
			out = append(out, u)
		}
	}
	return out
}

// dot, axpy, scale and project operate on vectors restricted to the sorted
// support list, keeping accumulation order deterministic.
func dot(a, b []float64, support []graph.NodeID) float64 {
	s := 0.0
	for _, u := range support {
		s += a[u] * b[u]
	}
	return s
}

func axpy(a, b []float64, c float64, support []graph.NodeID) {
	for _, u := range support {
		a[u] += c * b[u]
	}
}

func scale(a []float64, c float64, support []graph.NodeID) {
	for _, u := range support {
		a[u] *= c
	}
}

// project returns V Vᵀ x for the orthonormal columns V.
func project(V [][]float64, x []float64, n int, support []graph.NodeID) []float64 {
	out := make([]float64, n)
	for _, b := range V {
		d := dot(x, b, support)
		axpy(out, b, d, support)
	}
	return out
}
