package community

import (
	"slices"

	"locec/internal/graph"
)

// growLShell implements Bagrow & Bollt's l-shell spreading ("A local
// method for detecting communities", Phys. Rev. E 72, 046108, 2005). The
// community grows one BFS shell at a time: shell 0 is the seed, shell l+1
// is the unvisited neighborhood of shell l. Each shell's emerging degree
// K_l — the number of edges leading from the shell to still-unvisited
// vertices — measures how fast the growth is still expanding. We use the
// mean emerging degree per shell vertex (K_l normalized by shell size, a
// better-behaved statistic than the raw total on the small dense ego
// networks LoCEC runs on): when it drops below ShellCutoff times the
// previous shell's, the frontier has collapsed onto a community border
// and growth stops, keeping shells 0..l. A shell that would push the
// community past MaxSize is not absorbed at all, so the cut always falls
// on a shell boundary.
func growLShell(t *scanTracker, seed graph.NodeID, opt LocalOptions) []graph.NodeID {
	n := t.g.NumNodes()
	maxSize := opt.MaxSize
	if maxSize <= 0 || maxSize > n {
		maxSize = n
	}
	visited := make([]bool, n)
	visited[seed] = true
	members := []graph.NodeID{seed}
	shell := []graph.NodeID{seed}
	prevMean := 0.0
	for first := true; ; first = false {
		K := 0
		inNext := make([]bool, n)
		var next []graph.NodeID
		for _, u := range shell {
			for _, v := range t.neighbors(u) {
				if visited[v] {
					continue
				}
				K++
				if !inNext[v] {
					inNext[v] = true
					next = append(next, v)
				}
			}
		}
		if K == 0 {
			break // component exhausted
		}
		mean := float64(K) / float64(len(shell))
		if !first && mean < opt.ShellCutoff*prevMean {
			break // emerging degree collapsed: the border is here
		}
		if len(members)+len(next) > maxSize {
			break
		}
		slices.Sort(next)
		for _, v := range next {
			visited[v] = true
		}
		members = append(members, next...)
		shell = next
		prevMean = mean
	}
	return members
}
