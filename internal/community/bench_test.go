package community

import (
	"math/rand"
	"testing"

	"locec/internal/graph"
)

// egoLike builds a planted two-community graph shaped like a typical ego
// network (the Phase I unit of work).
func egoLike(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	half := n / 2
	dense := func(lo, hi int, p float64) {
		for i := lo; i < hi; i++ {
			for j := i + 1; j < hi; j++ {
				if rng.Float64() < p {
					_ = b.AddEdge(graph.NodeID(i), graph.NodeID(j))
				}
			}
		}
	}
	dense(0, half, 0.5)
	dense(half, n, 0.5)
	_ = b.AddEdge(graph.NodeID(half-1), graph.NodeID(half))
	return b.Build()
}

func BenchmarkGirvanNewmanEgo16(b *testing.B) {
	g := egoLike(16, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GirvanNewman(g, Options{})
	}
}

func BenchmarkGirvanNewmanEgo32(b *testing.B) {
	g := egoLike(32, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GirvanNewman(g, Options{})
	}
}

func BenchmarkGirvanNewmanEgo64Patience(b *testing.B) {
	g := egoLike(64, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GirvanNewman(g, Options{Patience: 20})
	}
}

func BenchmarkEdgeBetweenness(b *testing.B) {
	g := egoLike(32, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeBetweenness(g)
	}
}

func BenchmarkLabelPropagationEgo32(b *testing.B) {
	g := egoLike(32, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LabelPropagation(g, 20, int64(i))
	}
}

func BenchmarkLouvainEgo32(b *testing.B) {
	g := egoLike(32, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Louvain(g, int64(i))
	}
}

func BenchmarkLouvainEgo64(b *testing.B) {
	g := egoLike(64, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Louvain(g, int64(i))
	}
}
