package community_test

import (
	"testing"

	"locec/internal/bench"
	"locec/internal/community"
)

// Benchmarks run on bench.EgoGraph — the shared planted two-community
// fixture shaped like a typical ego network (the Phase I unit of work) —
// so `go test -bench` and the locec-bench detector suite measure
// identical graphs.

func BenchmarkGirvanNewmanEgo16(b *testing.B) {
	g := bench.EgoGraph(16, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		community.GirvanNewman(g, community.Options{})
	}
}

func BenchmarkGirvanNewmanEgo32(b *testing.B) {
	g := bench.EgoGraph(32, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		community.GirvanNewman(g, community.Options{})
	}
}

func BenchmarkGirvanNewmanEgo64Patience(b *testing.B) {
	g := bench.EgoGraph(64, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		community.GirvanNewman(g, community.Options{Patience: 20})
	}
}

func BenchmarkEdgeBetweenness(b *testing.B) {
	g := bench.EgoGraph(32, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		community.EdgeBetweenness(g)
	}
}

func BenchmarkLabelPropagationEgo32(b *testing.B) {
	g := bench.EgoGraph(32, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		community.LabelPropagation(g, 20, int64(i))
	}
}

func BenchmarkLouvainEgo32(b *testing.B) {
	g := bench.EgoGraph(32, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		community.Louvain(g, int64(i))
	}
}

func BenchmarkLouvainEgo64(b *testing.B) {
	g := bench.EgoGraph(64, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		community.Louvain(g, int64(i))
	}
}
