package community

import (
	"slices"

	"locec/internal/graph"
)

// This file is the shared scaffolding of the seed-grown ("local-first")
// detectors: Clauset local modularity, Bagrow–Bollt l-shell spreading and
// the simplified LEMON local spectral method. Unlike the global detectors
// (Girvan–Newman, label propagation, Louvain), these never look at the
// whole graph: each community is grown outward from a seed vertex and the
// growth stops when its boundary stabilizes.
//
// Locality is made auditable: every grow runs through a scanTracker that
// records the set of nodes whose adjacency the growth read. A grow is a
// pure function of the adjacency rows of its scanned nodes, which is the
// contract the incremental engine's seeded re-division relies on — if a
// mutation touches none of a stored grow's scanned nodes, replaying the
// grow on the mutated graph is guaranteed to reproduce it bit-identically
// without running the algorithm again (see LocalDivision.Replay).

// LocalKind selects one of the seed-grown detectors.
type LocalKind int

const (
	// LocalClauset grows by greedy boundary-R expansion (Clauset 2005,
	// "Finding local community structure in networks").
	LocalClauset LocalKind = iota
	// LocalLShell grows shell by shell with an emerging-degree cutoff
	// (Bagrow & Bollt 2005, "A local method for detecting communities").
	LocalLShell
	// LocalLemon grows by short random-walk diffusion, a small Krylov
	// subspace and a min-one-norm style sparse indicator with a
	// conductance sweep (Li et al. 2015, LEMON, simplified to ego scale).
	LocalLemon
)

// String implements fmt.Stringer.
func (k LocalKind) String() string {
	switch k {
	case LocalLShell:
		return "lshell"
	case LocalLemon:
		return "lemon"
	default:
		return "clauset"
	}
}

// LocalOptions tunes a seed-grown detector. The zero value of every knob
// selects a sensible default, so LocalOptions{Kind: ...} is a complete
// configuration.
type LocalOptions struct {
	Kind LocalKind
	// MaxSize caps the grown community size (0 = unbounded).
	MaxSize int
	// ShellCutoff stops l-shell growth when a shell's mean emerging
	// degree per vertex drops below this fraction of the previous
	// shell's (0 = 0.3).
	ShellCutoff float64
	// WalkSteps is LEMON's initial lazy random-walk length (0 = 3).
	WalkSteps int
	// SubspaceDim is LEMON's Krylov subspace dimension (0 = 3).
	SubspaceDim int
	// MinNormIters bounds LEMON's projected-subgradient refinement of the
	// sparse indicator (0 = 20).
	MinNormIters int
}

func (o *LocalOptions) fill() {
	if o.ShellCutoff == 0 {
		o.ShellCutoff = 0.3
	}
	if o.WalkSteps == 0 {
		o.WalkSteps = 3
	}
	if o.SubspaceDim == 0 {
		o.SubspaceDim = 3
	}
	if o.MinNormIters == 0 {
		o.MinNormIters = 20
	}
}

// Grown is one seed-grown community together with its provenance: the raw
// grown member set (before any overlap trimming by LocalDivide) and the
// scanned set — every node whose adjacency the growth read. Members and
// Scanned are sorted ascending; Members always contains Seed.
type Grown struct {
	Seed    graph.NodeID
	Members []graph.NodeID
	Scanned []graph.NodeID
}

// LocalDivision is a full partition produced by iterated seed growth, plus
// the per-community grows that produced it. Grows[i] grew Part.Comms[i]
// (the community may be a trimmed subset of the grow when an earlier
// community already claimed some of its members).
type LocalDivision struct {
	Part  *Partition
	Grows []Grown
}

// scanTracker wraps a graph and records which nodes' adjacency rows a
// growth reads. Growers must read the graph exclusively through it.
type scanTracker struct {
	g       *graph.Graph
	scanned []bool
}

func newScanTracker(g *graph.Graph) *scanTracker {
	return &scanTracker{g: g, scanned: make([]bool, g.NumNodes())}
}

func (t *scanTracker) neighbors(u graph.NodeID) []graph.NodeID {
	t.scanned[u] = true
	return t.g.Neighbors(u)
}

func (t *scanTracker) degree(u graph.NodeID) int {
	t.scanned[u] = true
	return t.g.Degree(u)
}

func (t *scanTracker) list() []graph.NodeID {
	var out []graph.NodeID
	for u, s := range t.scanned {
		if s {
			out = append(out, graph.NodeID(u))
		}
	}
	return out
}

// GrowLocal grows a single community from seed with the selected detector.
// The result is deterministic: same graph, seed and options always produce
// the same community, and its trace depends only on the adjacency rows of
// the returned Scanned set.
func GrowLocal(g *graph.Graph, seed graph.NodeID, opt LocalOptions) Grown {
	opt.fill()
	t := newScanTracker(g)
	var members []graph.NodeID
	switch opt.Kind {
	case LocalLShell:
		members = growLShell(t, seed, opt)
	case LocalLemon:
		members = growLemon(t, seed, opt)
	default:
		members = growClauset(t, seed, opt)
	}
	slices.Sort(members)
	return Grown{Seed: seed, Members: members, Scanned: t.list()}
}

// LocalDivide partitions the whole graph by iterated seed growth: seeds
// are visited in increasing node-ID order, each unassigned seed grows a
// community on the full graph (context-free — the growth never looks at
// earlier assignments), and the community keeps the grow's still-unassigned
// members. Every node ends up assigned: a node never claimed by an earlier
// grow eventually becomes a seed itself. Community order follows seed
// order, which (because each seed is the smallest unassigned node) matches
// the smallest-member canonical order of the global detectors.
func LocalDivide(g *graph.Graph, opt LocalOptions) *LocalDivision {
	opt.fill()
	n := g.NumNodes()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	var comms [][]graph.NodeID
	var grows []Grown
	for s := 0; s < n; s++ {
		if assign[s] >= 0 {
			continue
		}
		gr := GrowLocal(g, graph.NodeID(s), opt)
		comm := make([]graph.NodeID, 0, len(gr.Members))
		for _, v := range gr.Members {
			if assign[v] < 0 {
				comm = append(comm, v)
			}
		}
		idx := len(comms)
		for _, v := range comm {
			assign[v] = idx
		}
		comms = append(comms, comm)
		grows = append(grows, gr)
	}
	part := &Partition{Assign: assign, Comms: comms, Q: Modularity(g, assign)}
	return &LocalDivision{Part: part, Grows: grows}
}

// Replay recomputes the division on a mutated graph, reusing stored grows
// where the mutation provably cannot have changed them. touched lists the
// nodes whose adjacency differs between the graph this division was
// computed on and g (for an edge mutation batch: the endpoints of every
// net added or removed edge). The node set must be unchanged.
//
// The result is identical to LocalDivide(g, opt). Seeds are visited in the
// same ID order; for each seed, a stored grow whose Scanned set is
// disjoint from touched would read exactly the same adjacency rows on g as
// it did originally, so its outcome is reused verbatim; any other seed is
// re-grown on g. The second return value counts reused grows.
func (d *LocalDivision) Replay(g *graph.Graph, opt LocalOptions, touched []graph.NodeID) (*LocalDivision, int) {
	opt.fill()
	n := g.NumNodes()
	if len(d.Part.Assign) != n {
		return LocalDivide(g, opt), 0
	}
	isTouched := make([]bool, n)
	for _, u := range touched {
		if int(u) < n {
			isTouched[u] = true
		}
	}
	bySeed := make(map[graph.NodeID]*Grown, len(d.Grows))
	for i := range d.Grows {
		bySeed[d.Grows[i].Seed] = &d.Grows[i]
	}
	clean := func(gr *Grown) bool {
		for _, u := range gr.Scanned {
			if isTouched[u] {
				return false
			}
		}
		return true
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	var comms [][]graph.NodeID
	var grows []Grown
	reused := 0
	for s := 0; s < n; s++ {
		if assign[s] >= 0 {
			continue
		}
		var gr Grown
		if old, ok := bySeed[graph.NodeID(s)]; ok && clean(old) {
			gr = *old
			reused++
		} else {
			gr = GrowLocal(g, graph.NodeID(s), opt)
		}
		comm := make([]graph.NodeID, 0, len(gr.Members))
		for _, v := range gr.Members {
			if assign[v] < 0 {
				comm = append(comm, v)
			}
		}
		idx := len(comms)
		for _, v := range comm {
			assign[v] = idx
		}
		comms = append(comms, comm)
		grows = append(grows, gr)
	}
	part := &Partition{Assign: assign, Comms: comms, Q: Modularity(g, assign)}
	return &LocalDivision{Part: part, Grows: grows}, reused
}
