package community

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"locec/internal/graph"
)

// twoCliquesBridge builds two k-cliques joined by a single bridge edge.
// Node 0..k-1 is clique A, k..2k-1 is clique B; bridge is {k-1, k}.
func twoCliquesBridge(k int) *graph.Graph {
	b := graph.NewBuilder(2 * k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			_ = b.AddEdge(graph.NodeID(i), graph.NodeID(j))
			_ = b.AddEdge(graph.NodeID(k+i), graph.NodeID(k+j))
		}
	}
	_ = b.AddEdge(graph.NodeID(k-1), graph.NodeID(k))
	return b.Build()
}

// fig7Ego builds the ego network of U1 from Fig. 7(b): members U2..U6 as
// local 0..4 with edges {0,1},{0,2},{1,2},{2,4},{3,4}.
func fig7Ego() *graph.Graph {
	return graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, {U: 2, V: 4}, {U: 3, V: 4}})
}

func TestEdgeBetweennessBridgeIsMax(t *testing.T) {
	g := twoCliquesBridge(5)
	eb := EdgeBetweenness(g)
	bridgeKey := graph.Edge{U: 4, V: 5}.Key()
	bridge := eb[bridgeKey]
	for k, v := range eb {
		if k == bridgeKey {
			continue
		}
		if v >= bridge {
			t.Fatalf("edge %v betweenness %.1f >= bridge %.1f", graph.EdgeFromKey(k), v, bridge)
		}
	}
	// Bridge carries all 5*5 cross pairs, counted from both directions: 2*25
	// plus its own endpoints' pair contribution.
	want := 2.0 * (5*5 + 0) // cross pairs only pass the bridge; endpoints pair included in 5*5
	if math.Abs(bridge-want) > 1e-9 {
		t.Fatalf("bridge betweenness = %v, want %v", bridge, want)
	}
}

func TestEdgeBetweennessPath(t *testing.T) {
	// Path 0-1-2-3: middle edge carries the most shortest paths.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	eb := EdgeBetweenness(g)
	// Pairs through {1,2}: (0,2),(0,3),(1,2),(1,3) = 4 pairs, doubled = 8.
	if got := eb[graph.Edge{U: 1, V: 2}.Key()]; math.Abs(got-8) > 1e-9 {
		t.Fatalf("middle edge betweenness = %v, want 8", got)
	}
	// Pairs through {0,1}: (0,1),(0,2),(0,3) = 3 pairs, doubled = 6.
	if got := eb[graph.Edge{U: 0, V: 1}.Key()]; math.Abs(got-6) > 1e-9 {
		t.Fatalf("end edge betweenness = %v, want 6", got)
	}
}

func TestGirvanNewmanTwoCliques(t *testing.T) {
	g := twoCliquesBridge(5)
	p := GirvanNewman(g, Options{})
	if p.NumCommunities() != 2 {
		t.Fatalf("communities = %d, want 2 (Q=%.3f)", p.NumCommunities(), p.Q)
	}
	// All of clique A together, all of clique B together.
	for v := 1; v < 5; v++ {
		if p.Assign[v] != p.Assign[0] {
			t.Fatalf("clique A split: %v", p.Assign)
		}
	}
	for v := 6; v < 10; v++ {
		if p.Assign[v] != p.Assign[5] {
			t.Fatalf("clique B split: %v", p.Assign)
		}
	}
	if p.Assign[0] == p.Assign[5] {
		t.Fatalf("cliques merged: %v", p.Assign)
	}
}

func TestGirvanNewmanFig7(t *testing.T) {
	// The paper's Fig. 7(c): communities {U2,U3,U4} and {U5,U6},
	// i.e. locals {0,1,2} and {3,4}.
	g := fig7Ego()
	p := GirvanNewman(g, Options{})
	if p.NumCommunities() != 2 {
		t.Fatalf("communities = %d, want 2 (assign=%v)", p.NumCommunities(), p.Assign)
	}
	if p.Assign[0] != p.Assign[1] || p.Assign[1] != p.Assign[2] {
		t.Fatalf("C1 split: %v", p.Assign)
	}
	if p.Assign[3] != p.Assign[4] {
		t.Fatalf("C2 split: %v", p.Assign)
	}
	if p.Assign[0] == p.Assign[3] {
		t.Fatalf("C1 and C2 merged: %v", p.Assign)
	}
}

func TestGirvanNewmanEmptyAndSingleton(t *testing.T) {
	empty := graph.FromEdges(0, nil)
	p := GirvanNewman(empty, Options{})
	if p.NumCommunities() != 0 {
		t.Fatalf("empty graph communities = %d", p.NumCommunities())
	}
	single := graph.FromEdges(1, nil)
	p = GirvanNewman(single, Options{})
	if p.NumCommunities() != 1 || len(p.Comms[0]) != 1 {
		t.Fatalf("singleton partition = %+v", p)
	}
	// Edgeless graph: every node its own community.
	iso := graph.FromEdges(4, nil)
	p = GirvanNewman(iso, Options{})
	if p.NumCommunities() != 4 {
		t.Fatalf("edgeless communities = %d, want 4", p.NumCommunities())
	}
}

func TestGirvanNewmanPatienceStops(t *testing.T) {
	g := twoCliquesBridge(6)
	exact := GirvanNewman(g, Options{})
	early := GirvanNewman(g, Options{Patience: 3})
	// Early stop must still find the two-clique cut (the bridge goes first).
	if early.NumCommunities() != exact.NumCommunities() {
		t.Fatalf("patience changed result: %d vs %d", early.NumCommunities(), exact.NumCommunities())
	}
}

func TestModularityKnownValue(t *testing.T) {
	// Two triangles joined by one edge; perfect split has known Q.
	// Edges: triangle {0,1,2}, triangle {3,4,5}, bridge {2,3} -> m=7.
	g := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2},
		{U: 3, V: 4}, {U: 3, V: 5}, {U: 4, V: 5},
		{U: 2, V: 3},
	})
	assign := []int{0, 0, 0, 1, 1, 1}
	// intra per comm = 3, deg(comm) = 7 each, m = 7.
	want := 2 * (3.0/7.0 - math.Pow(7.0/14.0, 2))
	if got := Modularity(g, assign); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Q = %v, want %v", got, want)
	}
	// The all-in-one partition has Q = 1 - 1 = ... compute: intra=7, deg=14.
	if got := Modularity(g, []int{0, 0, 0, 0, 0, 0}); math.Abs(got-0) > 1e-12 {
		t.Fatalf("single-community Q = %v, want 0", got)
	}
}

func TestPartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				_ = b.AddEdge(u, v)
			}
		}
		g := b.Build()
		p := GirvanNewman(g, Options{})
		// Cover: every node in exactly one community; Assign consistent.
		seen := make(map[graph.NodeID]int)
		for c, comm := range p.Comms {
			for _, v := range comm {
				if _, dup := seen[v]; dup {
					return false
				}
				seen[v] = c
				if p.Assign[v] != c {
					return false
				}
			}
		}
		if len(seen) != n {
			return false
		}
		// Modularity bounded.
		return p.Q >= -1.0-1e-9 && p.Q <= 1.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelPropagationTwoCliques(t *testing.T) {
	g := twoCliquesBridge(6)
	p := LabelPropagation(g, 30, 42)
	if p.NumCommunities() != 2 {
		t.Fatalf("LPA communities = %d, want 2", p.NumCommunities())
	}
	if p.Assign[0] == p.Assign[6] {
		t.Fatalf("LPA merged cliques: %v", p.Assign)
	}
}

func TestLabelPropagationDeterministic(t *testing.T) {
	g := twoCliquesBridge(5)
	p1 := LabelPropagation(g, 30, 7)
	p2 := LabelPropagation(g, 30, 7)
	for i := range p1.Assign {
		if p1.Assign[i] != p2.Assign[i] {
			t.Fatalf("nondeterministic LPA at node %d", i)
		}
	}
}

func TestGirvanNewmanBetterOrEqualModularityThanTrivial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		b := graph.NewBuilder(n)
		for i := 1; i < n; i++ {
			_ = b.AddEdge(graph.NodeID(rng.Intn(i)), graph.NodeID(i)) // connected
		}
		for i := 0; i < n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				_ = b.AddEdge(u, v)
			}
		}
		g := b.Build()
		p := GirvanNewman(g, Options{})
		trivial := make([]int, n) // everything in one community -> Q = 0
		return p.Q >= Modularity(g, trivial)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
