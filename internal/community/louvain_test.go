package community

import (
	"math/rand"
	"testing"
	"testing/quick"

	"locec/internal/graph"
)

func TestLouvainTwoCliques(t *testing.T) {
	g := twoCliquesBridge(6)
	p := Louvain(g, 1)
	if p.NumCommunities() != 2 {
		t.Fatalf("communities = %d, want 2 (Q=%.3f)", p.NumCommunities(), p.Q)
	}
	for v := 1; v < 6; v++ {
		if p.Assign[v] != p.Assign[0] {
			t.Fatalf("clique A split: %v", p.Assign)
		}
	}
	for v := 7; v < 12; v++ {
		if p.Assign[v] != p.Assign[6] {
			t.Fatalf("clique B split: %v", p.Assign)
		}
	}
}

func TestLouvainEdgelessAndEmpty(t *testing.T) {
	p := Louvain(graph.FromEdges(0, nil), 1)
	if p.NumCommunities() != 0 {
		t.Fatalf("empty graph -> %d communities", p.NumCommunities())
	}
	p = Louvain(graph.FromEdges(3, nil), 1)
	if p.NumCommunities() != 3 {
		t.Fatalf("edgeless graph -> %d communities, want 3", p.NumCommunities())
	}
}

func TestLouvainFig7(t *testing.T) {
	// Fig. 7 ego network: same expected split as Girvan-Newman.
	g := fig7Ego()
	p := Louvain(g, 3)
	if p.NumCommunities() != 2 {
		t.Fatalf("communities = %d, want 2 (assign=%v)", p.NumCommunities(), p.Assign)
	}
	if p.Assign[0] != p.Assign[1] || p.Assign[1] != p.Assign[2] || p.Assign[3] != p.Assign[4] {
		t.Fatalf("wrong split: %v", p.Assign)
	}
}

func TestLouvainPartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if u != v {
				_ = b.AddEdge(u, v)
			}
		}
		g := b.Build()
		p := Louvain(g, seed)
		seen := make(map[graph.NodeID]bool)
		for c, comm := range p.Comms {
			for _, v := range comm {
				if seen[v] || p.Assign[v] != c {
					return false
				}
				seen[v] = true
			}
		}
		if len(seen) != n {
			return false
		}
		// Non-trivial graphs: modularity at least that of the trivial
		// all-in-one partition (Q = 0).
		return p.Q >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLouvainDeterministic(t *testing.T) {
	g := twoCliquesBridge(8)
	a := Louvain(g, 5)
	b := Louvain(g, 5)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("Louvain not deterministic for equal seeds")
		}
	}
}

func TestLouvainComparableModularityToGN(t *testing.T) {
	// On planted two-clique graphs both detectors should find the same
	// high-modularity structure.
	for k := 4; k <= 8; k++ {
		g := twoCliquesBridge(k)
		gn := GirvanNewman(g, Options{})
		lv := Louvain(g, 7)
		if lv.Q < gn.Q-0.05 {
			t.Fatalf("k=%d: Louvain Q=%.3f much worse than GN Q=%.3f", k, lv.Q, gn.Q)
		}
	}
}
