package community

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"locec/internal/graph"
)

var localKinds = []LocalKind{LocalClauset, LocalLShell, LocalLemon}

// plantedGraph builds a planted-partition graph: `blocks` groups of `size`
// nodes, intra-block edge probability pin, inter-block pout. Returns the
// graph and each node's planted block.
func plantedGraph(rng *rand.Rand, blocks, size int, pin, pout float64) (*graph.Graph, []int) {
	n := blocks * size
	truth := make([]int, n)
	for i := range truth {
		truth[i] = i / size
	}
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pout
			if truth[u] == truth[v] {
				p = pin
			}
			if rng.Float64() < p {
				edges = append(edges, graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v)})
			}
		}
	}
	return graph.FromEdges(n, edges), truth
}

// randomGraph builds an arbitrary sparse graph for invariant checks.
func randomGraph(rng *rand.Rand) *graph.Graph {
	n := 2 + rng.Intn(40)
	var edges []graph.Edge
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		e := (graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v)}).Canon()
		edges = append(edges, e)
	}
	slices.SortFunc(edges, func(a, b graph.Edge) int {
		switch {
		case a.Key() < b.Key():
			return -1
		case a.Key() > b.Key():
			return 1
		default:
			return 0
		}
	})
	edges = slices.Compact(edges)
	return graph.FromEdges(n, edges)
}

// connected reports whether members forms one connected subgraph of g
// containing seed.
func connected(g *graph.Graph, seed graph.NodeID, members []graph.NodeID) bool {
	in := map[graph.NodeID]bool{}
	for _, u := range members {
		in[u] = true
	}
	if !in[seed] {
		return false
	}
	seen := map[graph.NodeID]bool{seed: true}
	queue := []graph.NodeID{seed}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if in[v] && !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return len(seen) == len(members)
}

// TestGrowInvariants: for every detector, on arbitrary graphs, a grow (a)
// contains its seed, (b) is connected, (c) is sorted with no duplicates,
// and (d) scanned covers every member (the locality contract replay
// relies on: the grow read the adjacency of everything it returned).
func TestGrowInvariants(t *testing.T) {
	for _, kind := range localKinds {
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 40; trial++ {
			g := randomGraph(rng)
			seed := graph.NodeID(rng.Intn(g.NumNodes()))
			gr := GrowLocal(g, seed, LocalOptions{Kind: kind})
			if !slices.Contains(gr.Members, seed) {
				t.Fatalf("%v: trial %d: seed %d not in community %v", kind, trial, seed, gr.Members)
			}
			if !slices.IsSorted(gr.Members) || len(slices.Compact(slices.Clone(gr.Members))) != len(gr.Members) {
				t.Fatalf("%v: trial %d: members not sorted/unique: %v", kind, trial, gr.Members)
			}
			if !connected(g, seed, gr.Members) {
				t.Fatalf("%v: trial %d: community not connected: %v", kind, trial, gr.Members)
			}
			scanned := map[graph.NodeID]bool{}
			for _, u := range gr.Scanned {
				scanned[u] = true
			}
			for _, u := range gr.Members {
				if !scanned[u] {
					t.Fatalf("%v: trial %d: member %d missing from scanned set %v", kind, trial, u, gr.Scanned)
				}
			}
		}
	}
}

// TestGrowDeterministic: identical inputs give identical grows and
// identical full divisions, regardless of call order (gates test-order
// dependence under -shuffle=on).
func TestGrowDeterministic(t *testing.T) {
	for _, kind := range localKinds {
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 20; trial++ {
			g := randomGraph(rng)
			seed := graph.NodeID(rng.Intn(g.NumNodes()))
			a := GrowLocal(g, seed, LocalOptions{Kind: kind})
			b := GrowLocal(g, seed, LocalOptions{Kind: kind})
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%v: trial %d: grow not deterministic:\n%v\n%v", kind, trial, a, b)
			}
			da := LocalDivide(g, LocalOptions{Kind: kind})
			db := LocalDivide(g, LocalOptions{Kind: kind})
			if !reflect.DeepEqual(da, db) {
				t.Fatalf("%v: trial %d: division not deterministic", kind, trial)
			}
		}
	}
}

// TestLocalDividePartition: the division is a true partition — every node
// in exactly one community, assignments consistent with the member lists,
// members sorted, and communities in canonical smallest-member order.
func TestLocalDividePartition(t *testing.T) {
	for _, kind := range localKinds {
		rng := rand.New(rand.NewSource(13))
		for trial := 0; trial < 20; trial++ {
			g := randomGraph(rng)
			d := LocalDivide(g, LocalOptions{Kind: kind})
			p := d.Part
			if len(p.Assign) != g.NumNodes() || len(p.Comms) != len(d.Grows) {
				t.Fatalf("%v: shape mismatch", kind)
			}
			seen := make([]int, g.NumNodes())
			prevMin := graph.NodeID(0)
			for ci, comm := range p.Comms {
				if len(comm) == 0 {
					t.Fatalf("%v: empty community %d", kind, ci)
				}
				if !slices.IsSorted(comm) {
					t.Fatalf("%v: community %d not sorted: %v", kind, ci, comm)
				}
				if ci > 0 && comm[0] <= prevMin {
					t.Fatalf("%v: communities not in smallest-member order", kind)
				}
				prevMin = comm[0]
				if d.Grows[ci].Seed != comm[0] {
					t.Fatalf("%v: community %d seed %d != min member %d", kind, ci, d.Grows[ci].Seed, comm[0])
				}
				for _, u := range comm {
					seen[u]++
					if p.Assign[u] != ci {
						t.Fatalf("%v: assign[%d]=%d but member of %d", kind, u, p.Assign[u], ci)
					}
				}
			}
			for u, c := range seen {
				if c != 1 {
					t.Fatalf("%v: node %d in %d communities", kind, u, c)
				}
			}
		}
	}
}

// jaccard of two node sets.
func jaccard(a, b []graph.NodeID) float64 {
	in := map[graph.NodeID]bool{}
	for _, u := range a {
		in[u] = true
	}
	inter := 0
	for _, u := range b {
		if in[u] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// TestGrowPlantedAgreement: on planted-partition graphs every detector's
// grown community agrees with the seed's planted block above a pinned
// mean-Jaccard threshold. The thresholds are regression pins (measured on
// these seeds), not aspirations: a detector change that degrades recovery
// fails here.
func TestGrowPlantedAgreement(t *testing.T) {
	// Measured means on these seeds: clauset 0.963, lshell 0.851,
	// lemon 0.803.
	thresholds := map[LocalKind]float64{
		LocalClauset: 0.90,
		LocalLShell:  0.78,
		LocalLemon:   0.75,
	}
	for _, kind := range localKinds {
		rng := rand.New(rand.NewSource(17))
		sum, trials := 0.0, 0
		for trial := 0; trial < 30; trial++ {
			g, truth := plantedGraph(rng, 2, 12, 0.9, 0.04)
			seed := graph.NodeID(rng.Intn(g.NumNodes()))
			var block []graph.NodeID
			for u, b := range truth {
				if b == truth[seed] {
					block = append(block, graph.NodeID(u))
				}
			}
			gr := GrowLocal(g, seed, LocalOptions{Kind: kind})
			sum += jaccard(gr.Members, block)
			trials++
		}
		if mean := sum / float64(trials); mean < thresholds[kind] {
			t.Errorf("%v: mean planted-block Jaccard %.3f below pinned %.2f", kind, mean, thresholds[kind])
		}
	}
}

// toggleEdge returns a copy of g with edge {u,v} added or removed.
func toggleEdge(g *graph.Graph, u, v graph.NodeID) *graph.Graph {
	e := (graph.Edge{U: u, V: v}).Canon()
	edges := g.Edges()
	if g.HasEdge(u, v) {
		edges = slices.DeleteFunc(edges, func(x graph.Edge) bool { return x.Key() == e.Key() })
	} else {
		edges = append(edges, e)
	}
	return graph.FromEdges(g.NumNodes(), edges)
}

// TestReplayEquivalence is the seeded re-division exactness oracle at the
// community layer: after a random single-edge mutation, Replay with the
// mutation endpoints as the touched set must reproduce LocalDivide on the
// mutated graph bit-for-bit — including Q and the stored grows — while
// reusing at least some grows across the trial set (the early stop
// actually fires).
func TestReplayEquivalence(t *testing.T) {
	for _, kind := range localKinds {
		rng := rand.New(rand.NewSource(23))
		totalReused := 0
		for trial := 0; trial < 40; trial++ {
			g := randomGraph(rng)
			d := LocalDivide(g, LocalOptions{Kind: kind})
			u := graph.NodeID(rng.Intn(g.NumNodes()))
			v := graph.NodeID(rng.Intn(g.NumNodes()))
			if u == v {
				continue
			}
			g2 := toggleEdge(g, u, v)
			got, reused := d.Replay(g2, LocalOptions{Kind: kind}, []graph.NodeID{u, v})
			want := LocalDivide(g2, LocalOptions{Kind: kind})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: trial %d: replay diverged from full division after toggling {%d,%d}:\nreplay: %v\nfull:   %v",
					kind, trial, u, v, got.Part.Comms, want.Part.Comms)
			}
			totalReused += reused
		}
		if totalReused == 0 {
			t.Errorf("%v: replay never reused a grow across 40 trials — early stop is dead", kind)
		}
	}
}

// TestReplayReusesDistantGrows: a mutation confined to one clique must not
// re-grow communities seeded far away — "far" meaning outside every
// detector's scan radius (LEMON's diffusion ball spans WalkSteps +
// SubspaceDim − 1 ≈ 5 hops, so the cliques sit at the ends of a 12-node
// path).
func TestReplayReusesDistantGrows(t *testing.T) {
	// Clique A = 0..7, path 8–9–…–19 with 0–8, clique B = 20..27 with 19–20.
	var edges []graph.Edge
	for u := 0; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			edges = append(edges, graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v)})
			edges = append(edges, graph.Edge{U: graph.NodeID(u + 20), V: graph.NodeID(v + 20)})
		}
	}
	edges = append(edges, graph.Edge{U: 0, V: 8})
	for u := 8; u < 19; u++ {
		edges = append(edges, graph.Edge{U: graph.NodeID(u), V: graph.NodeID(u + 1)})
	}
	edges = append(edges, graph.Edge{U: 19, V: 20})
	g := graph.FromEdges(28, edges)
	for _, kind := range localKinds {
		d := LocalDivide(g, LocalOptions{Kind: kind})
		// Remove an edge deep inside clique B, away from the path mouth.
		g2 := toggleEdge(g, 25, 26)
		got, reused := d.Replay(g2, LocalOptions{Kind: kind}, []graph.NodeID{25, 26})
		want := LocalDivide(g2, LocalOptions{Kind: kind})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: replay diverged", kind)
		}
		if reused == 0 {
			t.Errorf("%v: mutation in clique B forced re-growing clique A's community", kind)
		}
	}
}
