// Package logreg implements multinomial (softmax) logistic regression, the
// classifier LoCEC's Phase III uses to combine the two endpoint communities'
// classification results into a final edge label (Eq. 4 of the paper).
package logreg

import (
	"fmt"
	"math"
	"math/rand"

	"locec/internal/tensor"
)

// Config controls training.
type Config struct {
	Classes   int     // required, >= 2
	Epochs    int     // default 100
	BatchSize int     // default 32
	LR        float64 // default 0.1
	L2        float64 // weight decay (default 1e-4)
	Seed      int64
}

func (c *Config) defaults() {
	if c.Epochs <= 0 {
		c.Epochs = 100
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 0.1
	}
	if c.L2 < 0 {
		c.L2 = 0
	}
}

// Model is a trained softmax regression classifier.
type Model struct {
	Classes  int
	Features int
	// W is Classes×(Features+1); the last column is the bias.
	W []float64
}

// Train fits the model with mini-batch SGD on the softmax cross-entropy.
//
// The whole training set is flattened once into an arena of [1,
// features...] rows; each shuffled mini-batch gathers its rows from the
// arena through the tensor GEMM kernels: logits are one
// MatMulABTAccGather against the bias-first weight matrix, gradients one
// MatMulATBGatherB of the (softmax − one-hot) residuals against the
// batch, each preceded by a serial warm pass over the batch's arena rows
// (rationale at the pass itself). Per dst element both kernels
// accumulate in exactly the order the retained scalar oracle uses — bias first then ascending
// features for logits, shuffled-row order for gradients — so Train and
// trainReference produce bit-identical weights (pinned by
// logreg_equiv_test.go). The bias column leads rather than trails here
// because the scalar logits sum starts from the bias; the public W keeps
// its bias-last layout via a final copy.
func Train(X [][]float64, y []int, cfg Config) (*Model, error) {
	cfg.defaults()
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("logreg: Classes must be >= 2, got %d", cfg.Classes)
	}
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("logreg: bad training set (%d rows, %d labels)", len(X), len(y))
	}
	nf := len(X[0])
	for i, l := range y {
		if l < 0 || l >= cfg.Classes {
			return nil, fmt.Errorf("logreg: label %d out of range at row %d", l, i)
		}
	}
	classes := cfg.Classes
	fw := nf + 1 // row width with the leading bias column
	m := &Model{Classes: classes, Features: nf, W: make([]float64, classes*fw)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	wb := make([]float64, classes*fw) // bias-first training weights
	grads := make([]float64, classes*fw)
	// Flatten X once into an arena of [1, features...] rows in original
	// order so each epoch streams one contiguous block instead of chasing
	// per-row slice headers.
	arena := make([]float64, len(X)*fw)
	for i, x := range X {
		row := arena[i*fw : (i+1)*fw]
		row[0] = 1
		copy(row[1:], x)
	}
	z := make([]float64, cfg.BatchSize*classes)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			bs := end - start
			batch := idx[start:end]
			// A shuffled epoch visits every arena row in random order,
			// so the batch panel starts cold no matter how it is read,
			// and the GEMM's two-row streams would serialize on those
			// misses. The warm pass touches one element per cache line
			// across ALL the batch's rows first — independent loads the
			// core keeps many in flight at a time — so the gather-fused
			// kernels then run against warm lines (measured ~1.6× on the
			// combiner shape versus letting the kernels fault the rows
			// in; interleaving these loads INTO the kernel measured
			// slower — the outstanding misses starve the compute's own
			// cache traffic of fill buffers).
			warm := 0.0
			for _, i := range batch {
				row := arena[i*fw : (i+1)*fw]
				for j := 0; j < fw; j += 8 {
					warm += row[j]
				}
			}
			gatherSink = warm
			zb := z[:bs*classes]
			for i := range zb {
				zb[i] = 0
			}
			tensor.MatMulABTAccGather(zb, arena, batch, wb, classes, fw)
			for r := 0; r < bs; r++ {
				zr := zb[r*classes : (r+1)*classes]
				tensor.Softmax(zr, zr)
				zr[y[batch[r]]] -= 1
			}
			tensor.MatMulATBGatherB(grads, zb, arena, batch, classes, fw)
			scale := cfg.LR / float64(bs)
			for i, g := range grads {
				wb[i] -= scale*g + cfg.LR*cfg.L2*wb[i]
			}
		}
	}
	// Publish in the bias-last layout the rest of the system expects.
	for c := 0; c < classes; c++ {
		copy(m.W[c*fw:c*fw+nf], wb[c*fw+1:(c+1)*fw])
		m.W[c*fw+nf] = wb[c*fw]
	}
	return m, nil
}

// gatherSink keeps the warm-pass loads in Train observable so the
// compiler cannot delete them.
var gatherSink float64

// logits writes raw class scores for x into out.
func (m *Model) logits(x []float64, out []float64) {
	nf := m.Features
	for c := 0; c < m.Classes; c++ {
		base := c * (nf + 1)
		s := m.W[base+nf]
		for f, v := range x {
			s += m.W[base+f] * v
		}
		out[c] = s
	}
}

// PredictProba returns class probabilities for x.
func (m *Model) PredictProba(x []float64) []float64 {
	out := make([]float64, m.Classes)
	m.PredictProbaInto(x, out)
	return out
}

// PredictProbaInto writes class probabilities for x into out (length
// Classes) without allocating — the batch-prediction hot path of the
// Phase III combiner.
func (m *Model) PredictProbaInto(x, out []float64) {
	if len(x) != m.Features {
		panic(fmt.Sprintf("logreg: expected %d features, got %d", m.Features, len(x)))
	}
	if len(out) != m.Classes {
		panic(fmt.Sprintf("logreg: expected %d-class output, got %d", m.Classes, len(out)))
	}
	m.logits(x, out)
	tensor.Softmax(out, out)
}

// Predict returns the argmax class for x.
func (m *Model) Predict(x []float64) int {
	return tensor.ArgMax(m.PredictProba(x))
}

// LogLoss computes mean cross-entropy over a dataset — a convergence probe
// for tests.
func (m *Model) LogLoss(X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	total := 0.0
	for i, x := range X {
		p := m.PredictProba(x)
		total += -math.Log(math.Max(p[y[i]], 1e-12))
	}
	return total / float64(len(X))
}
