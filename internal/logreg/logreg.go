// Package logreg implements multinomial (softmax) logistic regression, the
// classifier LoCEC's Phase III uses to combine the two endpoint communities'
// classification results into a final edge label (Eq. 4 of the paper).
package logreg

import (
	"fmt"
	"math"
	"math/rand"

	"locec/internal/tensor"
)

// Config controls training.
type Config struct {
	Classes   int     // required, >= 2
	Epochs    int     // default 100
	BatchSize int     // default 32
	LR        float64 // default 0.1
	L2        float64 // weight decay (default 1e-4)
	Seed      int64
}

func (c *Config) defaults() {
	if c.Epochs <= 0 {
		c.Epochs = 100
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 0.1
	}
	if c.L2 < 0 {
		c.L2 = 0
	}
}

// Model is a trained softmax regression classifier.
type Model struct {
	Classes  int
	Features int
	// W is Classes×(Features+1); the last column is the bias.
	W []float64
}

// Train fits the model with mini-batch SGD on the softmax cross-entropy.
func Train(X [][]float64, y []int, cfg Config) (*Model, error) {
	cfg.defaults()
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("logreg: Classes must be >= 2, got %d", cfg.Classes)
	}
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("logreg: bad training set (%d rows, %d labels)", len(X), len(y))
	}
	nf := len(X[0])
	for i, l := range y {
		if l < 0 || l >= cfg.Classes {
			return nil, fmt.Errorf("logreg: label %d out of range at row %d", l, i)
		}
	}
	m := &Model{Classes: cfg.Classes, Features: nf, W: make([]float64, cfg.Classes*(nf+1))}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	grads := make([]float64, len(m.W))
	probs := make([]float64, cfg.Classes)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for i := range grads {
				grads[i] = 0
			}
			for _, i := range idx[start:end] {
				m.logits(X[i], probs)
				tensor.Softmax(probs, probs)
				for c := 0; c < cfg.Classes; c++ {
					g := probs[c]
					if y[i] == c {
						g -= 1
					}
					base := c * (nf + 1)
					for f, v := range X[i] {
						grads[base+f] += g * v
					}
					grads[base+nf] += g // bias
				}
			}
			scale := cfg.LR / float64(end-start)
			for i := range m.W {
				m.W[i] -= scale*grads[i] + cfg.LR*cfg.L2*m.W[i]
			}
		}
	}
	return m, nil
}

// logits writes raw class scores for x into out.
func (m *Model) logits(x []float64, out []float64) {
	nf := m.Features
	for c := 0; c < m.Classes; c++ {
		base := c * (nf + 1)
		s := m.W[base+nf]
		for f, v := range x {
			s += m.W[base+f] * v
		}
		out[c] = s
	}
}

// PredictProba returns class probabilities for x.
func (m *Model) PredictProba(x []float64) []float64 {
	out := make([]float64, m.Classes)
	m.PredictProbaInto(x, out)
	return out
}

// PredictProbaInto writes class probabilities for x into out (length
// Classes) without allocating — the batch-prediction hot path of the
// Phase III combiner.
func (m *Model) PredictProbaInto(x, out []float64) {
	if len(x) != m.Features {
		panic(fmt.Sprintf("logreg: expected %d features, got %d", m.Features, len(x)))
	}
	if len(out) != m.Classes {
		panic(fmt.Sprintf("logreg: expected %d-class output, got %d", m.Classes, len(out)))
	}
	m.logits(x, out)
	tensor.Softmax(out, out)
}

// Predict returns the argmax class for x.
func (m *Model) Predict(x []float64) int {
	return tensor.ArgMax(m.PredictProba(x))
}

// LogLoss computes mean cross-entropy over a dataset — a convergence probe
// for tests.
func (m *Model) LogLoss(X [][]float64, y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	total := 0.0
	for i, x := range X {
		p := m.PredictProba(x)
		total += -math.Log(math.Max(p[y[i]], 1e-12))
	}
	return total / float64(len(X))
}
