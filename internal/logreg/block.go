package logreg

import (
	"fmt"

	"locec/internal/tensor"
)

// Block prediction: the Phase III combiner scores hundreds of thousands of
// edges with one tiny model, so the serving-shaped PredictProbaInto loop
// (one GEMV per edge) leaves most of the machine idle. These entry points
// take a whole panel of feature rows and run one GEMM + row-wise softmax.
// Rows carry a leading 1.0 bias column — the same bias-first form Train
// uses internally — so each row's logits accumulate bias first and then
// features in ascending order, exactly PredictProbaInto's order, making
// the block path bit-identical to the per-edge path.

// BiasFirstLen is the row width of the bias-first layout: features plus
// the leading 1.0 column.
func (m *Model) BiasFirstLen() int { return m.Features + 1 }

// BiasFirst writes the weights into dst in the bias-first layout
// (Classes rows of [bias, w...]) and returns it, allocating when dst is
// too small. Callers hold one copy per worker as GEMM scratch.
func (m *Model) BiasFirst(dst []float64) []float64 {
	fw := m.Features + 1
	dst = tensor.EnsureFloats(dst, m.Classes*fw)
	for c := 0; c < m.Classes; c++ {
		dst[c*fw] = m.W[c*fw+m.Features]
		copy(dst[c*fw+1:(c+1)*fw], m.W[c*fw:c*fw+m.Features])
	}
	return dst
}

// PredictProbaBlock writes class probabilities for `rows` feature rows
// into out (rows×Classes). xb is rows×(Features+1) row-major with a
// leading 1.0 bias column per row; wb is the BiasFirst weight copy. The
// result is bit-identical to calling PredictProbaInto row by row.
func (m *Model) PredictProbaBlock(wb, xb []float64, rows int, out []float64) {
	fw := m.Features + 1
	if len(wb) != m.Classes*fw || len(xb) < rows*fw || len(out) < rows*m.Classes {
		panic(fmt.Sprintf("logreg: PredictProbaBlock shape mismatch (rows=%d wb=%d xb=%d out=%d)",
			rows, len(wb), len(xb), len(out)))
	}
	zb := out[:rows*m.Classes]
	for i := range zb {
		zb[i] = 0
	}
	tensor.MatMulABTAcc(zb, xb[:rows*fw], wb, rows, m.Classes, fw)
	for r := 0; r < rows; r++ {
		zr := zb[r*m.Classes : (r+1)*m.Classes]
		tensor.Softmax(zr, zr)
	}
}

// BiasFirst32 is BiasFirst narrowed to float32 — the weight half of the
// inference-only float32 path.
func (m *Model) BiasFirst32(dst []float32) []float32 {
	fw := m.Features + 1
	if cap(dst) >= m.Classes*fw {
		dst = dst[:m.Classes*fw]
	} else {
		dst = make([]float32, m.Classes*fw)
	}
	for c := 0; c < m.Classes; c++ {
		dst[c*fw] = float32(m.W[c*fw+m.Features])
		for f := 0; f < m.Features; f++ {
			dst[c*fw+1+f] = float32(m.W[c*fw+f])
		}
	}
	return dst
}

// PredictProbaBlock32 is the float32 inference path: logits accumulate in
// float32 from narrowed features and weights, then widen for the softmax.
// Probabilities drift from the float64 path by roundoff (≲1e-5 absolute
// for combiner-scale models — pinned by a bound test), so it is opt-in
// for inference-only workloads where that tolerance is acceptable; paths
// that persist or serve probabilities keep the float64 kernels.
func (m *Model) PredictProbaBlock32(wb, xb []float32, rows int, out []float64) {
	fw := m.Features + 1
	if len(wb) != m.Classes*fw || len(xb) < rows*fw || len(out) < rows*m.Classes {
		panic(fmt.Sprintf("logreg: PredictProbaBlock32 shape mismatch (rows=%d wb=%d xb=%d out=%d)",
			rows, len(wb), len(xb), len(out)))
	}
	for r := 0; r < rows; r++ {
		xr := xb[r*fw : (r+1)*fw]
		or := out[r*m.Classes : (r+1)*m.Classes]
		for c := 0; c < m.Classes; c++ {
			wr := wb[c*fw : (c+1)*fw]
			var s float32
			for t, v := range xr {
				s += v * wr[t]
			}
			or[c] = float64(s)
		}
		tensor.Softmax(or, or)
	}
}
