package logreg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func blobs(n, classes int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(classes)
		row := make([]float64, classes)
		for d := range row {
			row[d] = rng.NormFloat64() * 0.4
		}
		row[c] += 2.5
		X[i] = row
		y[i] = c
	}
	return X, y
}

func TestValidation(t *testing.T) {
	if _, err := Train(nil, nil, Config{Classes: 2}); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := Train([][]float64{{1}}, []int{0}, Config{Classes: 1}); err == nil {
		t.Fatal("Classes=1 accepted")
	}
	if _, err := Train([][]float64{{1}}, []int{3}, Config{Classes: 2}); err == nil {
		t.Fatal("bad label accepted")
	}
}

func TestLearnsSeparableBlobs(t *testing.T) {
	X, y := blobs(240, 3, 1)
	m, err := Train(X, y, Config{Classes: 3, Epochs: 60, LR: 0.3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range X {
		if m.Predict(X[i]) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.95 {
		t.Fatalf("accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestLossDecreases(t *testing.T) {
	X, y := blobs(150, 3, 3)
	short, err := Train(X, y, Config{Classes: 3, Epochs: 2, LR: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Train(X, y, Config{Classes: 3, Epochs: 80, LR: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if long.LogLoss(X, y) >= short.LogLoss(X, y) {
		t.Fatalf("more epochs did not reduce loss: %.4f vs %.4f",
			long.LogLoss(X, y), short.LogLoss(X, y))
	}
}

func TestProbabilitiesValidProperty(t *testing.T) {
	X, y := blobs(100, 3, 5)
	m, err := Train(X, y, Config{Classes: 3, Epochs: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Max(-100, math.Min(100, v))
		}
		p := m.PredictProba([]float64{clamp(a), clamp(b), clamp(c)})
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	X, y := blobs(120, 3, 7)
	m1, _ := Train(X, y, Config{Classes: 3, Epochs: 10, Seed: 8})
	m2, _ := Train(X, y, Config{Classes: 3, Epochs: 10, Seed: 8})
	for i := range m1.W {
		if m1.W[i] != m2.W[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}

func TestPredictProbaPanicsOnBadWidth(t *testing.T) {
	X, y := blobs(60, 2, 9)
	m, err := Train(X, y, Config{Classes: 2, Epochs: 5, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong feature width")
		}
	}()
	m.PredictProba([]float64{1})
}
