package logreg

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	X, y := blobs(150, 3, 11)
	m, err := Train(X, y, Config{Classes: 3, Epochs: 20, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X[:30] {
		a, b := m.PredictProba(x), m2.PredictProba(x)
		for c := range a {
			if a[c] != b[c] {
				t.Fatal("loaded model diverges")
			}
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	cases := []string{
		`broken`,
		`{"Classes":1,"Features":3,"W":[1,2,3,4]}`,
		`{"Classes":2,"Features":0,"W":[]}`,
		`{"Classes":2,"Features":3,"W":[1,2]}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
