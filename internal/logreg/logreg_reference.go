package logreg

import (
	"fmt"
	"math/rand"

	"locec/internal/tensor"
)

// trainReference is the original row-at-a-time scalar trainer, retained
// verbatim as the equivalence oracle for the GEMM-batched Train. The two
// produce bit-identical weights: Train assembles each mini-batch into a
// flat matrix but preserves this loop's per-element accumulation order
// (logits sum the bias first and then features in ascending order; each
// gradient cell sums its batch rows in shuffled-index order), and both
// consume the seeded RNG only for the per-epoch shuffle. The equivalence
// test in logreg_equiv_test.go pins that contract with exact ==.
func trainReference(X [][]float64, y []int, cfg Config) (*Model, error) {
	cfg.defaults()
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("logreg: Classes must be >= 2, got %d", cfg.Classes)
	}
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("logreg: bad training set (%d rows, %d labels)", len(X), len(y))
	}
	nf := len(X[0])
	for i, l := range y {
		if l < 0 || l >= cfg.Classes {
			return nil, fmt.Errorf("logreg: label %d out of range at row %d", l, i)
		}
	}
	m := &Model{Classes: cfg.Classes, Features: nf, W: make([]float64, cfg.Classes*(nf+1))}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	grads := make([]float64, len(m.W))
	probs := make([]float64, cfg.Classes)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for i := range grads {
				grads[i] = 0
			}
			for _, i := range idx[start:end] {
				m.logits(X[i], probs)
				tensor.Softmax(probs, probs)
				for c := 0; c < cfg.Classes; c++ {
					g := probs[c]
					if y[i] == c {
						g -= 1
					}
					base := c * (nf + 1)
					for f, v := range X[i] {
						grads[base+f] += g * v
					}
					grads[base+nf] += g // bias
				}
			}
			scale := cfg.LR / float64(end-start)
			for i := range m.W {
				m.W[i] -= scale*grads[i] + cfg.LR*cfg.L2*m.W[i]
			}
		}
	}
	return m, nil
}
