package logreg

import (
	"math/rand"
	"testing"
)

// denseRows builds an nf-wide training set shaped like the Phase III
// combiner's (two tightness scalars + two GBDT leaf-value embeddings).
func denseRows(n, nf, classes int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, nf)
		for d := range row {
			row[d] = rng.NormFloat64()
		}
		X[i] = row
		y[i] = rng.Intn(classes)
	}
	return X, y
}

// TestTrainMatchesReferenceExactly pins the GEMM-batched Train to the
// retained scalar oracle with exact == on every weight: the batched
// kernels preserve the scalar loop's per-element accumulation order, so
// agreement is bit-for-bit, not merely within tolerance. Cases sweep the
// class counts (3 hits the dedicated skinny kernels, 2 and 4 the generic
// paths), batch sizes that do and do not divide the row count, and L2 on
// and off.
func TestTrainMatchesReferenceExactly(t *testing.T) {
	cases := []struct {
		name string
		n    int
		nf   int
		cfg  Config
	}{
		{"combiner-shape", 257, 18, Config{Classes: 3, Epochs: 7, Seed: 1}},
		{"ragged-batch", 101, 9, Config{Classes: 3, Epochs: 5, BatchSize: 7, Seed: 2}},
		{"two-classes", 96, 5, Config{Classes: 2, Epochs: 6, Seed: 3}},
		{"four-classes", 128, 11, Config{Classes: 4, Epochs: 4, BatchSize: 16, Seed: 4}},
		{"no-l2", 64, 6, Config{Classes: 3, Epochs: 8, BatchSize: 5, LR: 0.3, Seed: 5}},
		{"heavy-l2", 80, 7, Config{Classes: 3, Epochs: 8, L2: 0.01, Seed: 6}},
		{"single-row-batches", 23, 4, Config{Classes: 3, Epochs: 3, BatchSize: 1, Seed: 7}},
		{"one-big-batch", 40, 8, Config{Classes: 3, Epochs: 5, BatchSize: 1000, Seed: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.cfg.L2 == 0 && tc.name != "no-l2" {
				tc.cfg.L2 = 1e-4
			}
			X, y := denseRows(tc.n, tc.nf, tc.cfg.Classes, tc.cfg.Seed+100)
			got, err := Train(X, y, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := trainReference(X, y, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.Classes != want.Classes || got.Features != want.Features {
				t.Fatalf("shape mismatch: got (%d,%d), want (%d,%d)",
					got.Classes, got.Features, want.Classes, want.Features)
			}
			for i := range want.W {
				if got.W[i] != want.W[i] {
					t.Fatalf("W[%d]: batched %v != reference %v", i, got.W[i], want.W[i])
				}
			}
		})
	}
}

// TestTrainReferenceRejectsSameInputs keeps the oracle's validation in
// lockstep with Train's.
func TestTrainReferenceRejectsSameInputs(t *testing.T) {
	if _, err := trainReference(nil, nil, Config{Classes: 2}); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := trainReference([][]float64{{1}}, []int{0}, Config{Classes: 1}); err == nil {
		t.Fatal("Classes=1 accepted")
	}
	if _, err := trainReference([][]float64{{1}}, []int{3}, Config{Classes: 2}); err == nil {
		t.Fatal("bad label accepted")
	}
}

// TestPredictProbaBlockMatchesInto pins the block predictor to the
// per-row path with exact ==.
func TestPredictProbaBlockMatchesInto(t *testing.T) {
	X, y := denseRows(300, 17, 3, 42)
	m, err := Train(X, y, Config{Classes: 3, Epochs: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fw := m.BiasFirstLen()
	wb := m.BiasFirst(nil)
	rows := len(X)
	xb := make([]float64, rows*fw)
	for r, x := range X {
		xb[r*fw] = 1
		copy(xb[r*fw+1:(r+1)*fw], x)
	}
	out := make([]float64, rows*m.Classes)
	m.PredictProbaBlock(wb, xb, rows, out)
	probs := make([]float64, m.Classes)
	for r, x := range X {
		m.PredictProbaInto(x, probs)
		for c, p := range probs {
			if got := out[r*m.Classes+c]; got != p {
				t.Fatalf("row %d class %d: block %v != per-row %v", r, c, got, p)
			}
		}
	}
}

// TestPredictProbaBlock32Bound pins the float32 inference path to the
// float64 probabilities within an absolute tolerance.
func TestPredictProbaBlock32Bound(t *testing.T) {
	X, y := denseRows(300, 17, 3, 43)
	m, err := Train(X, y, Config{Classes: 3, Epochs: 20, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	fw := m.BiasFirstLen()
	rows := len(X)
	wb64 := m.BiasFirst(nil)
	xb64 := make([]float64, rows*fw)
	for r, x := range X {
		xb64[r*fw] = 1
		copy(xb64[r*fw+1:(r+1)*fw], x)
	}
	wb32 := m.BiasFirst32(nil)
	xb32 := make([]float32, rows*fw)
	for i, v := range xb64 {
		xb32[i] = float32(v)
	}
	want := make([]float64, rows*m.Classes)
	got := make([]float64, rows*m.Classes)
	m.PredictProbaBlock(wb64, xb64, rows, want)
	m.PredictProbaBlock32(wb32, xb32, rows, got)
	const tol = 1e-5
	for i := range want {
		if d := got[i] - want[i]; d > tol || d < -tol {
			t.Fatalf("prob %d: float32 %v vs float64 %v (|Δ| > %g)", i, got[i], want[i], tol)
		}
	}
}

// BenchmarkTrainCombinerShape measures Train at the real Phase III shape
// (≈37k labeled edges × 182 features × 3 classes). Five epochs rather
// than one so the per-call arena build amortizes the way the real
// 100-epoch run does; divide by five for the steady-state epoch cost.
func BenchmarkTrainCombinerShape(b *testing.B) {
	X, y := denseRows(36726, 182, 3, 99)
	cfg := Config{Classes: 3, Epochs: 5, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(X, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainReferenceCombinerShape(b *testing.B) {
	X, y := denseRows(36726, 182, 3, 99)
	cfg := Config{Classes: 3, Epochs: 5, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trainReference(X, y, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
