package logreg

import (
	"encoding/json"
	"fmt"
	"io"
)

// Save writes the trained model as JSON — also the payload of an
// artifact's "combiner" section (docs/FORMATS.md).
func (m *Model) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(m)
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("logreg: load: %w", err)
	}
	if m.Classes < 2 || m.Features <= 0 {
		return nil, fmt.Errorf("logreg: load: invalid header (classes=%d, features=%d)", m.Classes, m.Features)
	}
	if len(m.W) != m.Classes*(m.Features+1) {
		return nil, fmt.Errorf("logreg: load: weight length %d, want %d", len(m.W), m.Classes*(m.Features+1))
	}
	return &m, nil
}
