module locec

go 1.24
