package locec

import (
	"locec/internal/social"
	"locec/internal/wechat"
)

// SynthConfig controls the synthetic WeChat-like network generator — the
// substitution for the paper's proprietary trace (see DESIGN.md).
type SynthConfig struct {
	// Users is the population size (minimum 20).
	Users int
	// Seed makes generation deterministic.
	Seed int64
}

// SynthNetwork is a generated network: the learner-facing Dataset plus the
// generator-side ground structure (circles, chat groups, survey machinery).
type SynthNetwork struct {
	// Dataset is the learner-facing problem instance.
	Dataset *social.Dataset
	net     *wechat.Network
}

// Synthesize generates a WeChat-like network with planted social circles,
// sparse type-dependent interactions and chat groups.
func Synthesize(cfg SynthConfig) (*SynthNetwork, error) {
	net, err := wechat.Generate(wechat.DefaultConfig(cfg.Users, cfg.Seed))
	if err != nil {
		return nil, err
	}
	return &SynthNetwork{Dataset: net.Dataset, net: net}, nil
}

// RevealSurvey simulates the paper's user survey, revealing ground-truth
// labels for approximately the given fraction of edges, clustered around
// surveyed users.
func (s *SynthNetwork) RevealSurvey(fraction float64, seed int64) {
	s.net.RunSurvey(fraction, seed)
}

// TrueLabel returns the generator's ground-truth label for {u,v}
// (Unlabeled if the edge does not exist).
func (s *SynthNetwork) TrueLabel(u, v NodeID) Label {
	if l, ok := s.Dataset.TrueLabels[edgeKey(u, v)]; ok {
		return l
	}
	return Unlabeled
}

// Internal exposes the full generator output (circles, groups, survey
// records) for analysis tooling.
func (s *SynthNetwork) Internal() *wechat.Network { return s.net }
