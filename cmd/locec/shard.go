package main

// locec shard cuts a full .locec artifact into N per-shard artifacts for
// a fleet of `locec-serve -shard i/N` instances behind locec-router:
//
//	locec shard -in model.locec -n 4
//	# writes model-0-of-4.locec ... model-3-of-4.locec
//
// Ownership follows internal/ring's consistent hash of node IDs — the
// same pure function the router and each shard server compute — so the
// cut needs no manifest: shard i of N is fully described by its stamp.

import (
	"flag"
	"fmt"
	"time"

	"locec/internal/artifact"
)

func runShard(args []string) {
	fs := flag.NewFlagSet("locec shard", flag.ExitOnError)
	var (
		in  = fs.String("in", "model.locec", "full artifact to cut")
		n   = fs.Int("n", 2, "number of shards")
		out = fs.String("out", "", "output path stem (default: the input path; shard i becomes <stem>-i-of-N.locec)")
	)
	_ = fs.Parse(args) // ExitOnError: Parse never returns an error
	if *out == "" {
		*out = *in
	}

	full, err := artifact.LoadFile(*in)
	if err != nil {
		fatal(err)
	}
	meta := full.Meta()
	shards, err := artifact.CutShards(full, *n)
	if err != nil {
		fatal(err)
	}
	for i, sh := range shards {
		sh.StampCreated(time.Now())
		path := artifact.ShardPath(*out, i, *n)
		if err := sh.SaveFile(path); err != nil {
			fatal(err)
		}
		sm := sh.Meta()
		fmt.Printf("wrote %s (shard %d/%d: %d of %d nodes' egos, %d of %d edges)\n",
			path, i, *n, ownedEgos(sh), sm.Nodes, sm.Edges, meta.Edges)
	}
	fmt.Printf("serve shard i with: locec-serve -shard i/%d -artifact %s\n", *n, *out)
	fmt.Printf("route with:         locec-router -shards <addr0,...,addr%d>\n", *n-1)
}

// ownedEgos counts the non-placeholder ego results in a cut shard.
func ownedEgos(a *artifact.Artifact) int {
	ex, err := a.Export()
	if err != nil {
		return 0
	}
	owned := 0
	for _, er := range ex.Egos {
		if len(er.Members) > 0 || len(er.Comms) > 0 {
			owned++
		}
	}
	return owned
}
