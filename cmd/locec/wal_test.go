package main

import (
	"os"
	"testing"

	"locec/internal/core"
	"locec/internal/wal"
)

// writeWAL creates a WAL directory with n appended batches and returns it.
func writeWAL(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	log, _, err := wal.Open(wal.OSFS{}, dir, wal.SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		muts := []core.Mutation{{Kind: core.MutAdd, U: uint32(i), V: uint32(i + 100)}}
		if _, err := log.Append(muts); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestWalDumpExitCodes pins the fleet-tooling contract: exit 0 on a
// clean log, exit 1 when the log is truncated at a bad record — detected
// by status, not by parsing output.
func TestWalDumpExitCodes(t *testing.T) {
	dir := writeWAL(t, 3)
	if code := runWalDump([]string{"-dir", dir}); code != 0 {
		t.Fatalf("clean log: exit %d, want 0", code)
	}

	// Tear the tail: append garbage that cannot parse as a record.
	f, err := os.OpenFile(wal.LogPath(dir), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if code := runWalDump([]string{"-dir", dir}); code != 1 {
		t.Fatalf("torn log: exit %d, want 1", code)
	}
}
