package main

// Operator tooling for the locec-serve write-ahead log:
//
//	locec wal-dump   -dir wal/            inspect a WAL directory read-only
//	locec wal-replay -dir wal/ -out x.locec   offline recovery: checkpoint
//	                                          + log -> a fresh artifact
//
// wal-replay performs exactly the recovery locec-serve performs on boot,
// but writes the result as an artifact instead of serving it — useful for
// inspecting what a crashed server would come back as, or migrating a WAL
// directory's state onto a server without its log.

import (
	"flag"
	"fmt"
	"strings"

	"locec/internal/artifact"
	"locec/internal/core"
	"locec/internal/wal"
)

// runWalDump prints a WAL directory's contents without locking or
// repairing anything. The return value is the process exit code: 0 for a
// clean log, 1 when the log was truncated at a bad record — so fleet
// tooling can detect a torn tail without parsing output.
func runWalDump(args []string) int {
	fs := flag.NewFlagSet("locec wal-dump", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "WAL directory (as given to locec-serve -wal)")
		verbose = fs.Bool("v", false, "print every mutation, not just per-record summaries")
	)
	_ = fs.Parse(args) // ExitOnError: Parse never returns an error
	if *dir == "" {
		fatal(fmt.Errorf("wal-dump: -dir is required"))
	}

	if art, err := artifact.LoadFile(wal.CheckpointPath(*dir)); err == nil {
		meta := art.Meta()
		fmt.Printf("checkpoint: epoch %d, wal_seq %d, %d nodes, %d edges, dataset embedded: %v\n",
			meta.Epoch, meta.WALSeq, meta.Nodes, meta.Edges, art.HasDataset())
	} else {
		fmt.Printf("checkpoint: none (%v)\n", err)
	}

	baseSeq, batches, truncated, err := wal.Scan(wal.OSFS{}, *dir)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("log: base_seq %d, %d records\n", baseSeq, len(batches))
	for _, b := range batches {
		kinds := map[core.MutationKind]int{}
		for _, m := range b.Muts {
			kinds[m.Kind]++
		}
		fmt.Printf("  seq %d: %d mutations (add=%d remove=%d relabel=%d)\n",
			b.Seq, len(b.Muts), kinds[core.MutAdd], kinds[core.MutRemove], kinds[core.MutRelabel])
		if *verbose {
			for _, m := range b.Muts {
				fmt.Printf("    %-8s u=%d v=%d label=%s revealed=%v\n",
					m.Kind, m.U, m.V, m.Label, m.Revealed)
			}
		}
	}
	if truncated > 0 {
		fmt.Printf("wal-dump: TRUNCATED log: %d-byte torn tail after the last intact record (seq %d, %d records survive; repaired on next boot)\n",
			truncated, baseSeq+uint64(len(batches)), len(batches))
		return 1
	}
	return 0
}

// runWalReplay rebuilds the post-crash state offline and writes it as an
// artifact: load the checkpoint, replay every surviving log record with
// seq > the checkpoint's wal_seq, export. The return value is the
// process exit code: 0 for a full recovery from a clean log, 1 when the
// log was truncated at a bad record — the written artifact then reflects
// a PARTIAL recovery (everything up to the tear), and fleet tooling must
// decide whether that is acceptable.
func runWalReplay(args []string) int {
	fs := flag.NewFlagSet("locec wal-replay", flag.ExitOnError)
	var (
		dir      = fs.String("dir", "", "WAL directory (as given to locec-serve -wal)")
		out      = fs.String("out", "replayed.locec", "artifact output path")
		shards   = fs.Int("shards", 0, "worker shards for the dirty-set recompute (0 = GOMAXPROCS)")
		detector = fs.String("detector", "gn", "Phase I detector the serving config used: "+strings.Join(core.DetectorNames(), ", "))
		patience = fs.Int("gn-patience", 20, "Girvan-Newman early-stop patience (0 = exact)")
	)
	_ = fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("wal-replay: -dir is required"))
	}

	art, err := artifact.LoadFile(wal.CheckpointPath(*dir))
	if err != nil {
		fatal(fmt.Errorf("wal-replay: no usable checkpoint: %w", err))
	}
	ds, err := art.Dataset()
	if err != nil {
		fatal(err)
	}
	if ds == nil {
		fatal(fmt.Errorf("wal-replay: checkpoint has no embedded dataset; it cannot be replayed onto"))
	}
	ex, err := art.Export()
	if err != nil {
		fatal(err)
	}
	meta := art.Meta()

	divCfg := core.DivisionConfig{Workers: *shards, Seed: meta.Seed, GNPatience: *patience}
	det, err := core.ParseDetector(*detector)
	if err != nil {
		fatal(fmt.Errorf("wal-replay: %w", err))
	}
	divCfg.Detector = det
	pipe := core.NewPipeline(core.Config{Division: divCfg, Seed: meta.Seed})
	res, err := pipe.RunFromArtifact(ex)
	if err != nil {
		fatal(err)
	}
	if res.Classifier == nil || res.Combiner == nil {
		fatal(fmt.Errorf("wal-replay: checkpoint carries no trained models; records cannot be applied"))
	}

	_, batches, truncated, err := wal.Scan(wal.OSFS{}, *dir)
	if err != nil {
		fatal(err)
	}
	applied, skipped := 0, 0
	lastSeq := meta.WALSeq
	for _, b := range batches {
		if b.Seq <= meta.WALSeq {
			continue
		}
		nds, nres, _, err := pipe.ApplyMutations(ds, res, b.Muts)
		if err != nil {
			fmt.Printf("seq %d: rejected (%v) — skipped, exactly as the live server would have\n", b.Seq, err)
			skipped++
			lastSeq = b.Seq
			continue
		}
		ds, res = nds, nres
		applied++
		lastSeq = b.Seq
	}

	newEx, err := res.Export()
	if err != nil {
		fatal(err)
	}
	newArt, err := artifact.New(ds.G, newEx, meta.Seed)
	if err != nil {
		fatal(err)
	}
	if err := newArt.EmbedDataset(ds); err != nil {
		fatal(err)
	}
	newArt.StampWAL(meta.Epoch+int64(applied), lastSeq)
	if err := newArt.SaveFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %d records (%d rejected) atop checkpoint epoch %d; wrote %s (epoch %d, wal_seq %d, %d nodes, %d edges)\n",
		applied, skipped, meta.Epoch, *out, meta.Epoch+int64(applied), lastSeq,
		ds.G.NumNodes(), ds.G.NumEdges())
	if truncated > 0 {
		fmt.Printf("wal-replay: PARTIAL recovery: log truncated at a bad record (%d-byte torn tail); %s holds state up to seq %d only\n",
			truncated, *out, lastSeq)
		return 1
	}
	return 0
}
