// Command locec runs the full LoCEC pipeline on a synthetic WeChat-like
// network and reports classification quality, phase timings and the
// predicted type distribution.
//
// Usage:
//
//	locec -users 1200 -variant cnn -survey 0.4 -seed 42
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"locec"
	"locec/internal/eval"
	"locec/internal/graph"
	"locec/internal/iodata"
	"locec/internal/social"
)

func main() {
	var (
		users   = flag.Int("users", 800, "population size (synthetic mode)")
		seed    = flag.Int64("seed", 42, "random seed")
		survey  = flag.Float64("survey", 0.4, "fraction of edges with revealed labels (synthetic mode)")
		variant = flag.String("variant", "cnn", "community classifier: cnn or xgb")
		k       = flag.Int("k", 16, "feature matrix rows (CommCNN)")
		epochs  = flag.Int("epochs", 8, "CommCNN training epochs")
		input   = flag.String("input", "", "load a JSON dataset (locec-datagen format) instead of synthesizing")
		export  = flag.String("export", "", "write per-edge predictions to this CSV file")
	)
	flag.Parse()

	ds, err := loadOrSynthesize(*input, *users, *seed, *survey)
	if err != nil {
		fatal(err)
	}

	// Hold out 20% of the labeled edges for honest evaluation.
	labeled := ds.LabeledEdges()
	if len(labeled) == 0 {
		fatal(fmt.Errorf("dataset has no revealed labels; generate with -survey or mark edges revealed"))
	}
	_, test := eval.Split(labeled, 0.8, *seed+2)
	for _, kk := range test {
		delete(ds.Revealed, kk)
	}

	cfg := locec.Config{K: *k, Epochs: *epochs, Seed: *seed}
	if *variant == "xgb" {
		cfg.Variant = locec.VariantXGB
	}
	fmt.Printf("locec: %d users, %d friendships, %d labeled (train) / %d held out, variant %s\n",
		ds.G.NumNodes(), ds.G.NumEdges(), len(ds.LabeledEdges()), len(test), cfg.Variant)

	res, err := locec.Classify(ds, cfg)
	if err != nil {
		fatal(err)
	}

	truth := make([]social.Label, len(test))
	pred := make([]social.Label, len(test))
	for i, kk := range test {
		e := graph.EdgeFromKey(kk)
		truth[i] = ds.TrueLabels[kk]
		pred[i] = res.Label(e.U, e.V)
	}
	fmt.Println("\nHeld-out evaluation:")
	fmt.Println(eval.Evaluate(truth, pred))

	var dist [social.NumLabels]int
	ds.G.ForEachEdge(func(u, v locec.NodeID) {
		dist[res.Label(u, v)]++
	})
	fmt.Println("\nPredicted relationship distribution:")
	for c := 0; c < social.NumLabels; c++ {
		fmt.Printf("  %-16s %6.1f%%\n", social.Label(c),
			100*float64(dist[c])/float64(ds.G.NumEdges()))
	}

	training, p1, p2, p3 := res.PhaseDurations()
	fmt.Printf("\nPhase times: training=%.2fs phase1=%.2fs phase2=%.2fs phase3=%.2fs (communities: %d)\n",
		training, p1, p2, p3, res.NumCommunities())
	fmt.Printf("Network: mean clustering coefficient %.3f\n", ds.G.MeanClusteringCoefficient())

	if *export != "" {
		if err := exportCSV(*export, ds, res); err != nil {
			fatal(err)
		}
		fmt.Printf("Predictions written to %s\n", *export)
	}
}

// exportCSV writes one row per edge: u,v,predicted,probabilities.
func exportCSV(path string, ds *social.Dataset, res *locec.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"u", "v", "predicted", "p_colleague", "p_family", "p_schoolmate"}); err != nil {
		_ = f.Close()
		return err
	}
	var writeErr error
	ds.G.ForEachEdge(func(u, v locec.NodeID) {
		if writeErr != nil {
			return
		}
		p := res.Probabilities(u, v)
		writeErr = w.Write([]string{
			strconv.FormatUint(uint64(u), 10),
			strconv.FormatUint(uint64(v), 10),
			res.Label(u, v).String(),
			strconv.FormatFloat(p[0], 'f', 6, 64),
			strconv.FormatFloat(p[1], 'f', 6, 64),
			strconv.FormatFloat(p[2], 'f', 6, 64),
		})
	})
	if writeErr != nil {
		_ = f.Close()
		return writeErr
	}
	w.Flush()
	if err := w.Error(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// loadOrSynthesize builds the dataset from -input or the generator.
func loadOrSynthesize(input string, users int, seed int64, survey float64) (*social.Dataset, error) {
	if input == "" {
		net, err := locec.Synthesize(locec.SynthConfig{Users: users, Seed: seed})
		if err != nil {
			return nil, err
		}
		net.RevealSurvey(survey, seed+1)
		return net.Dataset, nil
	}
	f, err := os.Open(input)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	doc, err := iodata.Decode(f)
	if err != nil {
		return nil, err
	}
	return doc.ToDataset()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "locec:", err)
	os.Exit(1)
}
