// Command locec runs the full LoCEC pipeline on a synthetic WeChat-like
// network and reports classification quality, phase timings and the
// predicted type distribution.
//
// Usage:
//
//	locec -users 1200 -variant cnn -survey 0.4 -seed 42
//
// The train subcommand runs the pipeline once and saves the trained
// snapshot — graph, communities, model weights, every edge prediction —
// as a versioned binary artifact that locec-serve (or the library's
// ReadArtifact) can cold-start from without retraining:
//
//	locec train -users 1200 -variant xgb -seed 42 -out model.locec
//	locec-serve -artifact model.locec
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"locec"
	"locec/internal/artifact"
	"locec/internal/eval"
	"locec/internal/graph"
	"locec/internal/iodata"
	"locec/internal/social"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "train":
			runTrain(os.Args[2:])
			return
		case "shard":
			runShard(os.Args[2:])
			return
		case "wal-dump":
			os.Exit(runWalDump(os.Args[2:]))
		case "wal-replay":
			os.Exit(runWalReplay(os.Args[2:]))
		}
	}
	var (
		users    = flag.Int("users", 800, "population size (synthetic mode)")
		seed     = flag.Int64("seed", 42, "random seed")
		survey   = flag.Float64("survey", 0.4, "fraction of edges with revealed labels (synthetic mode)")
		variant  = flag.String("variant", "cnn", "community classifier: cnn or xgb")
		k        = flag.Int("k", 16, "feature matrix rows (CommCNN)")
		epochs   = flag.Int("epochs", 8, "CommCNN training epochs")
		input    = flag.String("input", "", "load a JSON dataset (locec-datagen format) instead of synthesizing")
		export   = flag.String("export", "", "write per-edge predictions to this CSV file")
		detector = flag.String("detector", "gn", "Phase I detector: gn, labelprop, louvain, clauset, lshell or lemon")
		gbdtW    = flag.Int("gbdt-workers", 0, "GBDT split-finding workers, bit-identical trees at any value (0 = GOMAXPROCS)")
	)
	flag.Parse()

	ds, err := loadOrSynthesize(*input, *users, *seed, *survey)
	if err != nil {
		fatal(err)
	}

	// Hold out 20% of the labeled edges for honest evaluation.
	labeled := ds.LabeledEdges()
	if len(labeled) == 0 {
		fatal(fmt.Errorf("dataset has no revealed labels; generate with -survey or mark edges revealed"))
	}
	_, test := eval.Split(labeled, 0.8, *seed+2)
	for _, kk := range test {
		delete(ds.Revealed, kk)
	}

	cfg := locec.Config{K: *k, Epochs: *epochs, Seed: *seed, GBDTWorkers: *gbdtW}
	if *variant == "xgb" {
		cfg.Variant = locec.VariantXGB
	}
	det, err := locec.ParseDetector(*detector)
	if err != nil {
		fatal(err)
	}
	cfg.Detector = det
	fmt.Printf("locec: %d users, %d friendships, %d labeled (train) / %d held out, variant %s, detector %s\n",
		ds.G.NumNodes(), ds.G.NumEdges(), len(ds.LabeledEdges()), len(test), cfg.Variant, *detector)

	res, err := locec.Classify(ds, cfg)
	if err != nil {
		fatal(err)
	}

	truth := make([]social.Label, len(test))
	pred := make([]social.Label, len(test))
	for i, kk := range test {
		e := graph.EdgeFromKey(kk)
		truth[i] = ds.TrueLabels[kk]
		pred[i] = res.Label(e.U, e.V)
	}
	fmt.Println("\nHeld-out evaluation:")
	fmt.Println(eval.Evaluate(truth, pred))

	var dist [social.NumLabels]int
	ds.G.ForEachEdge(func(u, v locec.NodeID) {
		dist[res.Label(u, v)]++
	})
	fmt.Println("\nPredicted relationship distribution:")
	for c := 0; c < social.NumLabels; c++ {
		fmt.Printf("  %-16s %6.1f%%\n", social.Label(c),
			100*float64(dist[c])/float64(ds.G.NumEdges()))
	}

	training, p1, p2, p3 := res.PhaseDurations()
	fmt.Printf("\nPhase times: training=%.2fs phase1=%.2fs phase2=%.2fs phase3=%.2fs (communities: %d)\n",
		training, p1, p2, p3, res.NumCommunities())
	fmt.Printf("Network: mean clustering coefficient %.3f\n", ds.G.MeanClusteringCoefficient())

	if *export != "" {
		if err := exportCSV(*export, ds, res); err != nil {
			fatal(err)
		}
		fmt.Printf("Predictions written to %s\n", *export)
	}
}

// runTrain is the offline half of the train-once / serve-many split: it
// trains on every revealed label (no held-out split — the artifact is a
// production snapshot, not an evaluation run) and writes the result as a
// .locec artifact.
func runTrain(args []string) {
	fs := flag.NewFlagSet("locec train", flag.ExitOnError)
	var (
		users    = fs.Int("users", 800, "population size (synthetic mode)")
		seed     = fs.Int64("seed", 42, "random seed")
		survey   = fs.Float64("survey", 0.4, "fraction of edges with revealed labels (synthetic mode)")
		variant  = fs.String("variant", "cnn", "community classifier: cnn or xgb")
		k        = fs.Int("k", 16, "feature matrix rows (CommCNN)")
		epochs   = fs.Int("epochs", 8, "CommCNN training epochs")
		input    = fs.String("input", "", "load a JSON dataset (locec-datagen format) instead of synthesizing")
		out      = fs.String("out", "model.locec", "artifact output path")
		detector = fs.String("detector", "gn", "Phase I detector: gn, labelprop, louvain, clauset, lshell or lemon")
		embed    = fs.Bool("embed-dataset", false, "embed the raw dataset so the artifact stays mutable (required for WAL checkpoints and POST /v1/mutations after a cold start)")
		gbdtW    = fs.Int("gbdt-workers", 0, "GBDT split-finding workers, bit-identical trees at any value (0 = GOMAXPROCS)")
	)
	_ = fs.Parse(args) // ExitOnError: Parse never returns an error

	ds, err := loadOrSynthesize(*input, *users, *seed, *survey)
	if err != nil {
		fatal(err)
	}
	if len(ds.LabeledEdges()) == 0 {
		fatal(fmt.Errorf("dataset has no revealed labels; generate with -survey or mark edges revealed"))
	}
	cfg := locec.Config{K: *k, Epochs: *epochs, Seed: *seed, GBDTWorkers: *gbdtW}
	if *variant == "xgb" {
		cfg.Variant = locec.VariantXGB
	}
	det, err := locec.ParseDetector(*detector)
	if err != nil {
		fatal(err)
	}
	cfg.Detector = det
	fmt.Printf("locec train: %d users, %d friendships, %d labeled, variant %s, detector %s\n",
		ds.G.NumNodes(), ds.G.NumEdges(), len(ds.LabeledEdges()), cfg.Variant, *detector)

	res, err := locec.Classify(ds, cfg)
	if err != nil {
		fatal(err)
	}
	ex, err := res.Internal().Export()
	if err != nil {
		fatal(err)
	}
	art, err := artifact.New(ds.G, ex, *seed)
	if err != nil {
		fatal(err)
	}
	art.StampCreated(time.Now())
	if *embed {
		if err := art.EmbedDataset(ds); err != nil {
			fatal(err)
		}
	}
	if err := art.SaveFile(*out); err != nil {
		fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	training, p1, p2, p3 := res.PhaseDurations()
	fmt.Printf("trained in %.2fs (training=%.2fs phase1=%.2fs phase2=%.2fs phase3=%.2fs)\n",
		training+p1+p2+p3, training, p1, p2, p3)
	fmt.Printf("wrote %s (%d bytes, %d communities, %d edge predictions)\n",
		*out, info.Size(), res.NumCommunities(), ds.G.NumEdges())
	fmt.Printf("serve it with: locec-serve -artifact %s\n", *out)
}

// exportCSV writes one row per edge: u,v,predicted,probabilities.
func exportCSV(path string, ds *social.Dataset, res *locec.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"u", "v", "predicted", "p_colleague", "p_family", "p_schoolmate"}); err != nil {
		_ = f.Close()
		return err
	}
	var writeErr error
	ds.G.ForEachEdge(func(u, v locec.NodeID) {
		if writeErr != nil {
			return
		}
		p := res.Probabilities(u, v)
		writeErr = w.Write([]string{
			strconv.FormatUint(uint64(u), 10),
			strconv.FormatUint(uint64(v), 10),
			res.Label(u, v).String(),
			strconv.FormatFloat(p[0], 'f', 6, 64),
			strconv.FormatFloat(p[1], 'f', 6, 64),
			strconv.FormatFloat(p[2], 'f', 6, 64),
		})
	})
	if writeErr != nil {
		_ = f.Close()
		return writeErr
	}
	w.Flush()
	if err := w.Error(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// loadOrSynthesize builds the dataset from -input or the generator.
func loadOrSynthesize(input string, users int, seed int64, survey float64) (*social.Dataset, error) {
	if input == "" {
		net, err := locec.Synthesize(locec.SynthConfig{Users: users, Seed: seed})
		if err != nil {
			return nil, err
		}
		net.RevealSurvey(survey, seed+1)
		return net.Dataset, nil
	}
	f, err := os.Open(input)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	doc, err := iodata.Decode(f)
	if err != nil {
		return nil, err
	}
	return doc.ToDataset()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "locec:", err)
	os.Exit(1)
}
