// Command locec-router fronts a sharded locec-serve fleet: it routes
// each request to the shard owning its data via the same consistent-hash
// ring the cutter (`locec shard`) and the shards compute, scatter-gathers
// classification batches, and degrades gracefully — retries with capped
// jittered backoff, hedged requests past the observed p95, per-shard
// circuit breakers fed by /readyz probes, and explicit partial responses
// (`"partial": true` + `missing_shards`) when a shard is dark.
//
// Usage:
//
//	locec shard -in model.locec -n 4
//	locec-serve -addr :8081 -shard 0/4 -artifact model.locec   # ×4
//	locec-router -addr :8080 -shards http://localhost:8081,http://localhost:8082,http://localhost:8083,http://localhost:8084
//
// Endpoints mirror locec-serve's read surface: GET /v1/edge,
// POST /v1/classify, GET /v1/communities/{node}, POST /v1/mutations
// (fanned to touched shards, aggregated honestly), GET /v1/stats
// (per-shard health + retry/hedge/breaker counters), /healthz, /readyz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"locec/internal/router"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		shards     = flag.String("shards", "", "comma-separated shard base URLs, in shard order (index i = shard i of the cut)")
		attempt    = flag.Duration("attempt-timeout", 2*time.Second, "per-RPC attempt timeout")
		reqTimeout = flag.Duration("request-timeout", 10*time.Second, "end-to-end per-request timeout")
		retries    = flag.Int("retries", 2, "max retries for idempotent reads")
		hedgeMax   = flag.Duration("hedge-max", 50*time.Millisecond, "hedge delay ceiling (floor 1ms; actual delay tracks each shard's p95)")
		brkThresh  = flag.Int("breaker-threshold", 5, "consecutive failures that open a shard's circuit")
		brkCool    = flag.Duration("breaker-cooldown", 5*time.Second, "open-circuit cooldown before a half-open trial")
		probeEvery = flag.Duration("probe-interval", time.Second, "/readyz probe interval (0 disables probing)")
	)
	flag.Parse()

	log := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	if *shards == "" {
		fatal(fmt.Errorf("-shards is required (comma-separated base URLs)"))
	}
	urls := strings.Split(*shards, ",")
	for i, u := range urls {
		urls[i] = strings.TrimSpace(u)
		if urls[i] == "" {
			fatal(fmt.Errorf("-shards entry %d is empty", i))
		}
	}

	r, err := router.New(router.Config{
		Shards:           len(urls),
		Transport:        &router.HTTPTransport{BaseURLs: urls},
		AttemptTimeout:   *attempt,
		RequestTimeout:   *reqTimeout,
		MaxRetries:       *retries,
		HedgeMax:         *hedgeMax,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCool,
		Logger:           log,
	})
	if err != nil {
		fatal(err)
	}
	if *probeEvery > 0 {
		ready := r.ProbeOnce(context.Background())
		log.Info("initial probe", "ready", ready, "shards", len(urls))
		stop := r.StartProber(*probeEvery)
		defer stop()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           r.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	errCh := make(chan error, 1)
	go func() {
		log.Info("routing", "addr", *addr, "shards", len(urls))
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Info("shutting down, draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
		log.Info("bye")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "locec-router:", err)
	os.Exit(1)
}
