package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"locec/internal/bench"
)

// writeReport stores a minimal valid BENCH json for CLI tests.
func writeReport(t *testing.T, dir, name string, nsPerOp float64) string {
	t.Helper()
	r := bench.Report{
		SchemaVersion: bench.SchemaVersion,
		Suite:         "smoke",
		GitSHA:        "test",
		GoVersion:     "go1.24.0",
		Results: []bench.ScenarioResult{
			{Scenario: "pipeline/xgb/n=100/density=base", Reps: 3, OpsPerRep: 1, NsPerOp: nsPerOp},
		},
	}
	path := filepath.Join(dir, name)
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "old.json", 1000)
	better := writeReport(t, dir, "better.json", 800)
	same := writeReport(t, dir, "same.json", 1000)
	worse := writeReport(t, dir, "worse.json", 1400) // +40% > 30% gate

	cases := []struct {
		name string
		new  string
		want int
	}{
		{"improvement", better, 0},
		{"no-change", same, 0},
		{"regression", worse, 1},
	}
	for _, c := range cases {
		var stdout, stderr bytes.Buffer
		got := run([]string{"-diff", base, "-threshold", "0.30", c.new}, &stdout, &stderr)
		if got != c.want {
			t.Errorf("%s: exit = %d, want %d (stderr: %s)", c.name, got, c.want, stderr.String())
		}
		if c.want == 1 && !strings.Contains(stdout.String(), "REGRESSION") {
			t.Errorf("%s: regression not reported:\n%s", c.name, stdout.String())
		}
	}
}

// TestDiffScenarioMismatchFails: a baseline recorded before the suite
// gained or lost scenarios must fail the diff with a refresh hint, even
// when every matched scenario is within threshold.
func TestDiffScenarioMismatchFails(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "old.json", 1000)
	r := bench.Report{
		SchemaVersion: bench.SchemaVersion,
		Suite:         "smoke",
		GitSHA:        "test",
		GoVersion:     "go1.24.0",
		Results: []bench.ScenarioResult{
			{Scenario: "pipeline/xgb/n=100/density=base", Reps: 3, OpsPerRep: 1, NsPerOp: 1000},
			{Scenario: "divide/clauset/n=100", Reps: 3, OpsPerRep: 1, NsPerOp: 500},
		},
	}
	grown := filepath.Join(dir, "grown.json")
	if err := r.Write(grown); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-diff", base, grown}, &stdout, &stderr); got != 1 {
		t.Fatalf("scenario mismatch: exit = %d, want 1 (stderr: %s)", got, stderr.String())
	}
	if !strings.Contains(stderr.String(), "refresh bench/baseline.json") {
		t.Errorf("stderr missing the refresh hint: %s", stderr.String())
	}
}

func TestDiffUsageErrors(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "old.json", 1000)

	var stdout, stderr bytes.Buffer
	if got := run([]string{"-diff", base}, &stdout, &stderr); got != 2 {
		t.Errorf("missing new json: exit = %d, want 2", got)
	}
	if got := run([]string{"-diff", filepath.Join(dir, "missing.json"), base}, &stdout, &stderr); got != 2 {
		t.Errorf("unreadable baseline: exit = %d, want 2", got)
	}
	if got := run([]string{"-bogus-flag"}, &stdout, &stderr); got != 2 {
		t.Errorf("bad flag: exit = %d, want 2", got)
	}
}

func TestListPrintsSuitesAndScenarios(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-list"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"smoke", "scale", "detectors", "serve", "pipeline/xgb/n=100/density=base"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownSuiteFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-suite", "nope", "-q"}, &stdout, &stderr); got != 1 {
		t.Errorf("exit = %d, want 1", got)
	}
	if !strings.Contains(stderr.String(), "unknown suite") {
		t.Errorf("stderr missing cause: %s", stderr.String())
	}
}

// TestSmokeSuiteWritesValidReport is the acceptance check: running the
// smoke suite produces a parseable BENCH json with per-phase durations
// and serve latency percentiles, and the result diffs cleanly against
// itself.
func TestSmokeSuiteWritesValidReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real smoke suite")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_smoke.json")
	profile := filepath.Join(dir, "cpu.pprof")
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-suite", "smoke", "-out", out, "-warmup", "1", "-reps", "1", "-q", "-cpuprofile", profile}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d, stderr: %s", got, stderr.String())
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(profile); err != nil {
		t.Errorf("-cpuprofile wrote nothing: %v", err)
	} else if fi.Size() == 0 {
		t.Error("-cpuprofile wrote an empty profile")
	}
	r, err := bench.ReadReport(out)
	if err != nil {
		t.Fatal(err)
	}
	var phases, latency bool
	for _, res := range r.Results {
		if len(res.PhaseNs) > 0 {
			phases = true
		}
		if res.Latency != nil && res.Latency.P99Ns > 0 {
			latency = true
		}
	}
	if !phases {
		t.Error("smoke report has no per-phase durations")
	}
	if !latency {
		t.Error("smoke report has no serve latency percentiles")
	}

	// A report must never regress against itself.
	var dout, derr bytes.Buffer
	if got := run([]string{"-diff", out, out}, &dout, &derr); got != 0 {
		t.Errorf("self-diff exit = %d:\n%s%s", got, dout.String(), derr.String())
	}
}

// writeReportAllocs stores a BENCH json whose only scenario carries an
// allocation count, for allocation-gate CLI tests.
func writeReportAllocs(t *testing.T, dir, name string, nsPerOp, allocs float64) string {
	t.Helper()
	r := bench.Report{
		SchemaVersion: bench.SchemaVersion,
		Suite:         "smoke",
		GitSHA:        "test",
		GoVersion:     "go1.24.0",
		Results: []bench.ScenarioResult{
			{Scenario: "pipeline/xgb/n=100/density=base", Reps: 3, OpsPerRep: 1, NsPerOp: nsPerOp, AllocsPerOp: allocs},
		},
	}
	path := filepath.Join(dir, name)
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffAllocsGateExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := writeReportAllocs(t, dir, "old.json", 1000, 100)
	bloated := writeReportAllocs(t, dir, "bloat.json", 1000, 200) // flat time, 2x allocs

	var stdout, stderr bytes.Buffer
	if got := run([]string{"-diff", base, bloated}, &stdout, &stderr); got != 1 {
		t.Errorf("allocation regression exit = %d, want 1:\n%s", got, stdout.String())
	}
	if !strings.Contains(stdout.String(), "ALLOC-REGRESSION") {
		t.Errorf("allocation regression not reported:\n%s", stdout.String())
	}
	stdout.Reset()
	if got := run([]string{"-diff", base, "-allocs-threshold", "-1", bloated}, &stdout, &stderr); got != 0 {
		t.Errorf("disabled allocs gate exit = %d, want 0:\n%s", got, stdout.String())
	}
}
