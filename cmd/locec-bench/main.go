// Command locec-bench runs named benchmark suites and manages their
// machine-readable results.
//
// Run a suite and record BENCH_<suite>.json:
//
//	locec-bench -suite smoke -out BENCH_smoke.json
//
// Compare two recordings and fail (exit 1) on any scenario slower than
// the wall-clock threshold or allocating beyond the allocation threshold
// (flags must precede the positional new-report path):
//
//	locec-bench -diff bench/baseline.json -threshold 0.30 -allocs-threshold 0.50 BENCH_smoke.json
//
// List the available suites:
//
//	locec-bench -list
//
// Profile a suite run (the profile covers prepare + warmup + measured
// repetitions; open with go tool pprof):
//
//	locec-bench -suite smoke -cpuprofile cpu.pprof
//
// See docs/BENCHMARKING.md for the JSON schema and the baseline-update
// workflow.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"

	"locec/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("locec-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		suite      = fs.String("suite", "smoke", "suite to run (see -list)")
		out        = fs.String("out", "", "output path (default BENCH_<suite>.json)")
		list       = fs.Bool("list", false, "list suites and their scenarios, then exit")
		diff       = fs.String("diff", "", "baseline BENCH json; compares the positional new json against it and exits 1 on regression")
		threshold  = fs.Float64("threshold", bench.DefaultThreshold, "regression gate for -diff: fail when ns/op grows by more than this fraction (0 or negative falls back to the default)")
		allocsGate = fs.Float64("allocs-threshold", bench.DefaultAllocsThreshold, "allocation gate for -diff: fail when allocs/op grows by more than this fraction (0 falls back to the default, negative disables)")
		warmup     = fs.Int("warmup", 0, "untimed runs per scenario (0 = harness default)")
		reps       = fs.Int("reps", 0, "measured repetitions per scenario (0 = harness default)")
		quiet      = fs.Bool("q", false, "suppress per-repetition progress")
		cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile of the suite run to this file (go tool pprof <binary> <file>)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *list:
		return runList(stdout, stderr)
	case *diff != "":
		return runDiff(*diff, fs.Args(), *threshold, *allocsGate, stdout, stderr)
	default:
		if *cpuprofile != "" {
			f, err := os.Create(*cpuprofile)
			if err != nil {
				fmt.Fprintln(stderr, "locec-bench: -cpuprofile:", err)
				return 1
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				_ = f.Close()
				fmt.Fprintln(stderr, "locec-bench: -cpuprofile:", err)
				return 1
			}
			defer func() {
				pprof.StopCPUProfile()
				if err := f.Close(); err != nil {
					fmt.Fprintln(stderr, "locec-bench: -cpuprofile:", err)
				}
			}()
		}
		return runSuite(*suite, *out, *warmup, *reps, *quiet, stdout, stderr)
	}
}

func runList(stdout, stderr io.Writer) int {
	for _, name := range bench.SuiteNames() {
		fmt.Fprintln(stdout, name)
		scs, err := bench.Suite(name)
		if err != nil {
			fmt.Fprintln(stderr, "locec-bench:", err)
			return 1
		}
		for _, sc := range scs {
			fmt.Fprintf(stdout, "  %s\n", sc.Name)
		}
	}
	return 0
}

func runDiff(oldPath string, args []string, threshold, allocsThreshold float64, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "locec-bench: -diff needs exactly one positional argument: the new BENCH json (usage: locec-bench -diff old.json new.json)")
		return 2
	}
	old, err := bench.ReadReport(oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "locec-bench:", err)
		return 2
	}
	new, err := bench.ReadReport(args[0])
	if err != nil {
		fmt.Fprintln(stderr, "locec-bench:", err)
		return 2
	}
	d := bench.Diff(old, new, threshold, allocsThreshold)
	d.Format(stdout)
	if d.ScenarioMismatch() {
		fmt.Fprintln(stderr, "locec-bench: scenario sets differ between baseline and run — the baseline is stale; refresh bench/baseline.json with: go run ./cmd/locec-bench -suite smoke -out bench/baseline.json")
		return 1
	}
	if len(d.Regressions()) > 0 {
		return 1
	}
	return 0
}

func runSuite(suite, out string, warmup, reps int, quiet bool, stdout, stderr io.Writer) int {
	opt := bench.Options{Warmup: warmup, Reps: reps}
	if !quiet {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	report, err := bench.RunSuite(suite, opt)
	if err != nil {
		fmt.Fprintln(stderr, "locec-bench:", err)
		return 1
	}
	if out == "" {
		out = "BENCH_" + suite + ".json"
	}
	if err := report.Write(out); err != nil {
		fmt.Fprintln(stderr, "locec-bench:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%-44s %14s %12s\n", "scenario", "ns/op", "p99")
	for _, r := range report.Results {
		p99 := "-"
		if r.Latency != nil {
			p99 = fmt.Sprintf("%.0fns", r.Latency.P99Ns)
		}
		fmt.Fprintf(stdout, "%-44s %14.0f %12s\n", r.Scenario, r.NsPerOp, p99)
	}
	fmt.Fprintf(stdout, "\nwrote %s (%d scenarios, git %s)\n", out, len(report.Results), report.GitSHA)
	return 0
}
