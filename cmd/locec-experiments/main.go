// Command locec-experiments regenerates the paper's tables and figures on
// the synthetic WeChat-like substrate.
//
// Usage:
//
//	locec-experiments -exp all
//	locec-experiments -exp table4 -users 1200 -seed 42
//	locec-experiments -exp fig11 -quick
//
// Experiments: table1 table2 table4 table5 table6
// fig2 fig3 fig4 fig10a fig10b fig11 fig12a fig12b fig13 fig14, plus the
// extensions ablation and frontier, or "all".
//
// The eval-smoke mode is the CI quality gate: it runs the detector
// frontier plus a CNN reference, writes the tracked macro-F1 metrics as
// JSON, and (with -eval-diff) fails when any metric drops below its
// pinned baseline:
//
//	locec-experiments -eval-smoke -quick -eval-out EVAL_smoke.json \
//	    -eval-diff bench/eval-baseline.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"locec/internal/experiments"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment to run (comma-separated, or 'all')")
		users       = flag.Int("users", 0, "population size (0 = experiment default)")
		seed        = flag.Int64("seed", 42, "random seed")
		quick       = flag.Bool("quick", false, "reduced sweeps and training budgets")
		evalSmoke   = flag.Bool("eval-smoke", false, "run the eval quality gate instead of -exp")
		evalOut     = flag.String("eval-out", "EVAL_smoke.json", "eval-smoke report output path")
		evalDiff    = flag.String("eval-diff", "", "baseline eval json; fail when a tracked metric drops below it")
		evalEpsilon = flag.Float64("eval-epsilon", 0, "allowed absolute metric drop before the gate fails (0 = default)")
	)
	flag.Parse()

	opt := experiments.Default()
	if *quick {
		opt = experiments.Quick()
	}
	if *users > 0 {
		opt.Users = *users
	}
	opt.Seed = *seed

	if *evalSmoke {
		os.Exit(runEvalSmoke(opt, *evalOut, *evalDiff, *evalEpsilon))
	}

	type runner struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	runners := []runner{
		{"table1", func() (fmt.Stringer, error) { return experiments.Table1(opt) }},
		{"table2", func() (fmt.Stringer, error) {
			rep, err := experiments.Table2(opt)
			if err != nil {
				return nil, err
			}
			return titled{"Table II: group name classification performance", rep.String()}, nil
		}},
		{"fig2", func() (fmt.Stringer, error) { return experiments.Fig2(opt) }},
		{"fig3", func() (fmt.Stringer, error) { return experiments.Fig3(opt) }},
		{"fig4", func() (fmt.Stringer, error) { return experiments.Fig4(opt) }},
		{"fig10a", func() (fmt.Stringer, error) { return experiments.Fig10a(opt) }},
		{"fig10b", func() (fmt.Stringer, error) { return experiments.Fig10b(opt) }},
		{"table4", func() (fmt.Stringer, error) {
			rows, err := experiments.Table4(opt)
			if err != nil {
				return nil, err
			}
			return str(experiments.FormatTable4(rows)), nil
		}},
		{"fig11", func() (fmt.Stringer, error) { return experiments.Fig11(opt) }},
		{"table5", func() (fmt.Stringer, error) {
			rows, err := experiments.Table5(opt)
			if err != nil {
				return nil, err
			}
			return str(experiments.FormatTable5(rows)), nil
		}},
		{"table6", func() (fmt.Stringer, error) { return experiments.Table6(opt) }},
		{"fig12a", func() (fmt.Stringer, error) { return experiments.Fig12a(opt) }},
		{"fig12b", func() (fmt.Stringer, error) { return experiments.Fig12b(opt) }},
		{"fig13", func() (fmt.Stringer, error) { return experiments.Fig13(opt) }},
		{"fig14", func() (fmt.Stringer, error) { return experiments.Fig14(opt) }},
		{"ablation", func() (fmt.Stringer, error) { return experiments.Ablations(opt) }},
		{"frontier", func() (fmt.Stringer, error) { return experiments.DetectorFrontier(opt) }},
	}

	want := map[string]bool{}
	runAll := *exp == "all"
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	matched := false
	for _, r := range runners {
		if !runAll && !want[r.name] {
			continue
		}
		matched = true
		t0 := time.Now()
		out, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "locec-experiments: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", r.name, time.Since(t0).Seconds(), out)
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "locec-experiments: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// runEvalSmoke runs the quality gate: measure, write, optionally diff.
func runEvalSmoke(opt experiments.Options, out, diff string, epsilon float64) int {
	t0 := time.Now()
	report, err := experiments.EvalSmoke(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locec-experiments: eval-smoke:", err)
		return 1
	}
	if err := report.Write(out); err != nil {
		fmt.Fprintln(os.Stderr, "locec-experiments: eval-smoke:", err)
		return 1
	}
	fmt.Printf("eval-smoke (%.1fs) -> %s\n", time.Since(t0).Seconds(), out)
	for _, m := range report.Metrics {
		fmt.Printf("  %-28s %.4f\n", m.Name, m.Value)
	}
	if diff == "" {
		return 0
	}
	baseline, err := experiments.ReadEvalReport(diff)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locec-experiments: eval-smoke:", err)
		return 2
	}
	failures := experiments.DiffEval(baseline, report, epsilon)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "locec-experiments: eval gate:", f)
		}
		fmt.Fprintln(os.Stderr, "locec-experiments: eval gate failed; if the change is an intended quality shift, refresh the baseline with: go run ./cmd/locec-experiments -eval-smoke -quick -eval-out bench/eval-baseline.json")
		return 1
	}
	fmt.Printf("eval gate: all %d metrics within epsilon of %s\n", len(baseline.Metrics), diff)
	return 0
}

// str adapts a plain string to fmt.Stringer.
type str string

func (s str) String() string { return string(s) }

// titled prefixes a rendering with a title line.
type titled struct {
	title, body string
}

func (t titled) String() string { return t.title + "\n" + t.body }
