// Command locec-datagen generates a synthetic WeChat-like dataset and
// writes it in the repository's JSON interchange format (see
// internal/iodata), loadable by `locec -input`.
//
// Usage:
//
//	locec-datagen -users 1000 -seed 7 -o network.json
//	locec-datagen -users 500 -survey 0.4 | jq '.edges | length'
package main

import (
	"flag"
	"fmt"
	"os"

	"locec/internal/iodata"
	"locec/internal/wechat"
)

func main() {
	var (
		users  = flag.Int("users", 1000, "population size")
		seed   = flag.Int64("seed", 42, "random seed")
		survey = flag.Float64("survey", 0, "fraction of edge labels to mark revealed (0 = none)")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	net, err := wechat.Generate(wechat.DefaultConfig(*users, *seed))
	if err != nil {
		fatal(err)
	}
	if *survey > 0 {
		net.RunSurvey(*survey, *seed+1)
	}
	doc := iodata.FromDataset(net.Dataset, net.EdgeSecond, net.CommonGroups)
	for _, g := range net.Groups {
		fg := iodata.Group{Name: g.Name}
		for _, m := range g.Members {
			fg.Members = append(fg.Members, uint32(m))
		}
		doc.Groups = append(doc.Groups, fg)
	}

	w := os.Stdout
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w = f
	}
	if err := doc.Encode(w); err != nil {
		fatal(err)
	}
	if f != nil {
		// A dropped Close error on the written file could hide truncation.
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "locec-datagen: %d users, %d edges, %d groups, %d revealed labels\n",
		len(doc.Users), len(doc.Edges), len(doc.Groups), len(net.Dataset.Revealed))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "locec-datagen:", err)
	os.Exit(1)
}
