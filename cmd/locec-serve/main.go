// Command locec-serve is the LoCEC classification service: it synthesizes
// (or loads) a WeChat-like network, classifies every friendship with the
// three-phase pipeline across a sharded worker pool, and serves the result
// over HTTP/JSON from an atomically swappable in-memory snapshot.
//
// Usage:
//
//	locec-serve -addr :8080 -users 800 -variant cnn -shards 8
//
// Endpoints:
//
//	GET  /healthz                 pure liveness (200 even while booting)
//	GET  /readyz                  readiness: 503 until the snapshot is
//	                              loaded and WAL replay has completed
//	GET  /v1/edge?u=3&v=7         one friendship's predicted type
//	POST /v1/classify             batch lookup: {"edges":[{"u":3,"v":7},...]}
//	GET  /v1/communities/{node}   a node's ego-network communities
//	GET  /v1/stats                snapshot, phase times, cache, uptime
//	GET  /v1/artifact             download the live snapshot as a .locec file
//	POST /v1/reload               swap in a new snapshot: {"seed":N} retrains,
//	                              {"artifact":"path"} loads without training
//	POST /v1/mutations            mutate the live graph (add/remove/relabel
//	                              edges); only the dirty neighborhood is
//	                              recomputed and a new snapshot published
//
// With -artifact the initial snapshot is deserialized from a file written
// by `locec train -out` instead of trained, so restarts cost O(load).
// With -shard i/N the instance serves one slice of an N-way cut
// (`locec shard -n N`) behind locec-router: it loads only shard i's
// artifact and answers 421 for data other shards own. The port is bound
// before the snapshot loads (a boot gate answers /healthz 200 and
// everything else 503 until then), so fleet probes can tell "booting"
// from "dead".
// With -wal dir/ accepted mutations are appended to a durable write-ahead
// log before they are applied, boot replays the log atop the last
// checkpoint artifact, and a background checkpointer truncates the log —
// a kill -9 loses nothing that was acknowledged (see docs/OPERATIONS.md).
// SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	artifactpkg "locec/internal/artifact"
	"locec/internal/iodata"
	"locec/internal/serve"
	"locec/internal/social"
	"locec/internal/wal"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		users    = flag.Int("users", 800, "population size (synthetic mode)")
		seed     = flag.Int64("seed", 42, "random seed for the initial snapshot")
		survey   = flag.Float64("survey", 0.4, "fraction of edges with revealed labels (synthetic mode)")
		variant  = flag.String("variant", "cnn", "community classifier: cnn or xgb")
		k        = flag.Int("k", 16, "feature matrix rows (CommCNN)")
		epochs   = flag.Int("epochs", 8, "CommCNN training epochs")
		shards   = flag.Int("shards", 0, "worker shards for division and training (0 = GOMAXPROCS)")
		gbdtW    = flag.Int("gbdt-workers", 0, "GBDT split-finding workers, bit-identical trees at any value (0 = -shards)")
		detector = flag.String("detector", "gn", "Phase I detector: gn, labelprop, louvain, clauset, lshell or lemon")
		patience = flag.Int("gn-patience", 20, "Girvan-Newman early-stop patience (0 = exact)")
		cache    = flag.Int("cache", 256, "batch-response LRU cache entries")
		input    = flag.String("input", "", "load a JSON dataset (locec-datagen format) instead of synthesizing")
		artifact = flag.String("artifact", "", "cold-start from a trained artifact (locec train -out) instead of training")
		shard    = flag.String("shard", "", "serve one slice of a sharded fleet as \"i/N\" (requires -artifact; loads <artifact stem>-i-of-N.locec)")

		walDir      = flag.String("wal", "", "directory for the durable mutation WAL (empty = mutations are in-memory only)")
		walSync     = flag.String("wal-sync", "batch", "WAL fsync policy: always (per batch), batch (per burst, group commit) or none")
		ckptRecords = flag.Int("wal-checkpoint-records", 64, "checkpoint when the log holds this many records")
		ckptBytes   = flag.Int64("wal-checkpoint-bytes", 4<<20, "checkpoint when the log reaches this many bytes")
		ckptRatio   = flag.Float64("wal-checkpoint-ratio", 0.25, "checkpoint when mutations-since-checkpoint / graph edges reaches this ratio")
	)
	flag.Parse()

	log := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	cfg := serve.Config{
		Users:       *users,
		Survey:      *survey,
		Seed:        *seed,
		Variant:     *variant,
		K:           *k,
		Epochs:      *epochs,
		Shards:      *shards,
		GBDTWorkers: *gbdtW,
		Detector:    *detector,
		GNPatience:  *patience,
		CacheSize:   *cache,
		Artifact:    *artifact,
		Logger:      log,

		WALDir:            *walDir,
		CheckpointRecords: *ckptRecords,
		CheckpointBytes:   *ckptBytes,
		CheckpointRatio:   *ckptRatio,
	}
	mode, err := wal.ParseSyncMode(*walSync)
	if err != nil {
		fatal(err)
	}
	cfg.WALSync = mode
	if *shard != "" {
		i, n, err := parseShard(*shard)
		if err != nil {
			fatal(err)
		}
		cfg.ShardIndex, cfg.ShardCount = i, n
		if *artifact == "" {
			fatal(fmt.Errorf("-shard requires -artifact (cut one with: locec shard -n %d)", n))
		}
		// Accept either the exact shard file or the base path the cutter
		// was given (resolved to <stem>-i-of-N.locec).
		if _, err := os.Stat(*artifact); err != nil {
			resolved := artifactpkg.ShardPath(*artifact, i, n)
			if _, rerr := os.Stat(resolved); rerr != nil {
				fatal(fmt.Errorf("neither %s nor %s exists", *artifact, resolved))
			}
			*artifact = resolved
		} else if art, err := artifactpkg.LoadFile(*artifact); err == nil && !art.Meta().Sharded() {
			// The base (full) artifact exists on disk too; prefer the cut.
			resolved := artifactpkg.ShardPath(*artifact, i, n)
			if _, rerr := os.Stat(resolved); rerr == nil {
				*artifact = resolved
			}
		}
		cfg.Artifact = *artifact
	}
	if *input != "" && *artifact != "" {
		fatal(fmt.Errorf("-input and -artifact are mutually exclusive"))
	}
	if *input != "" {
		ds, err := loadDataset(*input)
		if err != nil {
			fatal(err)
		}
		cfg.Source = func(int64) (*social.Dataset, error) { return ds, nil }
	}

	if *artifact != "" {
		log.Info("cold-starting from artifact", "path", *artifact, "shard", *shard)
	} else {
		log.Info("building initial snapshot",
			"users", *users, "variant", *variant, "shards", *shards, "seed", *seed)
	}

	// Bind the port before the snapshot build: while serve.New runs (a
	// cold start, a full training run, or a WAL replay), /healthz answers
	// 200 "booting" and everything else 503, so the fleet sees a live but
	// not-ready process instead of connection refused.
	gate := serve.NewBootGate()
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gate,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	srv, err := serve.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	gate.Ready(srv.Handler())
	log.Info("ready")

	select {
	case <-ctx.Done():
		log.Info("shutting down, draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fatal(err)
		}
		log.Info("bye")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

// parseShard parses an "i/N" shard designation.
func parseShard(s string) (i, n int, err error) {
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf("-shard %q: want i/N (e.g. 1/4)", s)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("-shard %q: index out of range", s)
	}
	return i, n, nil
}

// loadDataset reads a locec-datagen JSON document.
func loadDataset(path string) (*social.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	doc, err := iodata.Decode(f)
	if err != nil {
		return nil, err
	}
	return doc.ToDataset()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "locec-serve:", err)
	os.Exit(1)
}
