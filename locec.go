// Package locec is the public API of this repository: a from-scratch Go
// implementation of LoCEC — Local Community-based Edge Classification in
// Large Online Social Networks (Song et al., ICDE 2020).
//
// LoCEC classifies the edges of a friendship graph into real-world
// relationship types (colleagues, family members, schoolmates) in three
// phases: (I) division — every node's ego network is extracted and
// partitioned into local communities with Girvan–Newman; (II) aggregation —
// each local community is classified from an interaction/profile feature
// matrix by the CommCNN convolutional model or an XGBoost-style learner;
// (III) combination — a logistic regression merges both endpoints'
// community results into a final edge label.
//
// Quick start:
//
//	ds, _ := locec.Synthesize(locec.SynthConfig{Users: 1000, Seed: 1})
//	ds.RevealSurvey(0.4, 7)
//	res, err := locec.Classify(ds.Dataset, locec.Config{Variant: locec.VariantCNN, Seed: 1})
//	if err != nil { ... }
//	label := res.Label(u, v)
//
// Custom graphs are assembled with NewBuilder. Everything is stdlib-only
// and deterministic per seed.
package locec

import (
	"fmt"

	"locec/internal/core"
	"locec/internal/gbdt"
	"locec/internal/graph"
	"locec/internal/logreg"
	"locec/internal/social"
)

// NodeID identifies a user; IDs are dense 0..NumUsers-1.
type NodeID = graph.NodeID

// Label is a relationship type.
type Label = social.Label

// Relationship types (re-exported from the data model).
const (
	Colleague  = social.Colleague
	Family     = social.Family
	Schoolmate = social.Schoolmate
	Other      = social.Other
	Unlabeled  = social.Unlabeled
)

// NumLabels is the number of predictable relationship classes.
const NumLabels = social.NumLabels

// InteractionDim identifies an interaction dimension (likes, comments,
// messages, ... — see the Dim constants).
type InteractionDim = social.InteractionDim

// Interaction dimensions observed on each friend pair.
const (
	DimMessage        = social.DimMessage
	DimLikePicture    = social.DimLikePicture
	DimLikeArticle    = social.DimLikeArticle
	DimLikeGame       = social.DimLikeGame
	DimCommentPicture = social.DimCommentPicture
	DimCommentArticle = social.DimCommentArticle
	DimCommentGame    = social.DimCommentGame
	DimRepost         = social.DimRepost
	// NumInteractionDims is the interaction vector width |I|.
	NumInteractionDims = social.NumInteractionDims
)

// Variant selects the Phase II community classifier.
type Variant int

const (
	// VariantCNN is LoCEC-CNN, the paper's best performer (CommCNN).
	VariantCNN Variant = iota
	// VariantXGB is LoCEC-XGB, the gradient-boosted runner-up.
	VariantXGB
)

// Detector selects the Phase I community detection algorithm.
type Detector int

const (
	// DetectorGirvanNewman is the paper's algorithm (default).
	DetectorGirvanNewman Detector = iota
	// DetectorLabelProp is a fast ablation alternative.
	DetectorLabelProp
	// DetectorLouvain is a fast greedy-modularity ablation alternative.
	DetectorLouvain
	// DetectorClauset grows communities by greedy local-modularity
	// expansion from seeds (Clauset 2005) — a local detector whose
	// results the incremental engine can replay.
	DetectorClauset
	// DetectorLShell grows communities shell by shell with an
	// emerging-degree cutoff (Bagrow & Bollt 2005) — local.
	DetectorLShell
	// DetectorLemon grows communities by short random-walk diffusion and
	// a local spectral sweep (Li et al. 2015, simplified) — local.
	DetectorLemon
)

// ParseDetector maps a detector name — "gn" (or ""), "labelprop",
// "louvain", "clauset", "lshell", "lemon" — to its Detector constant.
func ParseDetector(name string) (Detector, error) {
	switch name {
	case "", "gn":
		return DetectorGirvanNewman, nil
	case "labelprop":
		return DetectorLabelProp, nil
	case "louvain":
		return DetectorLouvain, nil
	case "clauset":
		return DetectorClauset, nil
	case "lshell":
		return DetectorLShell, nil
	case "lemon":
		return DetectorLemon, nil
	default:
		return 0, fmt.Errorf("locec: unknown detector %q (want one of %v)", name, core.DetectorNames())
	}
}

// String implements fmt.Stringer.
func (v Variant) String() string {
	if v == VariantXGB {
		return "LoCEC-XGB"
	}
	return "LoCEC-CNN"
}

// Config tunes a classification run. The zero value plus a Seed gives the
// paper's configuration (CNN, k = 20).
type Config struct {
	// Variant picks LoCEC-CNN (default) or LoCEC-XGB.
	Variant Variant
	// K is the community feature-matrix row budget (paper: 20).
	K int
	// Epochs / Filters / Hidden tune CommCNN training (CNN variant).
	Epochs, Filters, Hidden int
	// Rounds / MaxDepth tune the boosted trees (XGB variant).
	Rounds, MaxDepth int
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// GBDTWorkers bounds GBDT split-finding parallelism (0 = Workers).
	// Any value produces bit-identical trees — a pure speed knob.
	GBDTWorkers int
	// Seed makes the run reproducible.
	Seed int64
	// Detector swaps the Phase I algorithm (default Girvan–Newman, the
	// paper's choice; the alternatives are ablations).
	Detector Detector
	// GNPatience stops Girvan–Newman early after this many fruitless
	// rounds (0 = exact; larger ego networks benefit from ~20).
	GNPatience int
	// AgreementRule replaces the Phase III logistic regression with the
	// naive both-sides-agree rule (ablation; not the paper's combiner).
	AgreementRule bool
}

// Result exposes a completed run.
type Result struct {
	inner *core.Result
}

// Label returns the predicted relationship for the friendship {u,v}
// (Unlabeled if the edge does not exist).
func (r *Result) Label(u, v NodeID) Label {
	l, ok := r.inner.PredictedLabelOK(u, v)
	if !ok {
		return Unlabeled
	}
	return l
}

// Probabilities returns the class probability vector for the friendship
// {u,v}, or nil if the edge does not exist. Index the result with
// Colleague/Family/Schoolmate.
func (r *Result) Probabilities(u, v NodeID) []float64 {
	return r.inner.Edges.Probs((graph.Edge{U: u, V: v}).Key())
}

// NumCommunities reports how many local communities Phase I detected
// across all ego networks.
func (r *Result) NumCommunities() int { return len(r.inner.Communities) }

// CommunitySizes returns the size of every detected local community.
func (r *Result) CommunitySizes() []float64 { return r.inner.CommunitySizes() }

// PhaseDurations reports wall-clock time per phase: Phase II model
// training, division, aggregation, combination.
func (r *Result) PhaseDurations() (training, phase1, phase2, phase3 float64) {
	t := r.inner.Times
	return t.Training.Seconds(), t.Phase1.Seconds(), t.Phase2.Seconds(), t.Phase3.Seconds()
}

// ClassifierName reports the Phase II community classifier the run used
// ("LoCEC-CNN" or "LoCEC-XGB").
func (r *Result) ClassifierName() string { return r.inner.ClassifierName }

// CommunityView is a read-only snapshot of one local community detected in
// a node's ego network — what GET /v1/communities/{node} of locec-serve
// returns per community.
type CommunityView struct {
	// Ego is the node whose ego network contains the community.
	Ego NodeID
	// Members are the community's nodes (global IDs).
	Members []NodeID
	// Tightness[i] is Members[i]'s tightness in the community (Eq. 3).
	Tightness []float64
	// Label is the Phase II argmax class for the community.
	Label Label
	// Probs is the Phase II class probability vector.
	Probs []float64
}

// NodeCommunities returns the local communities of node's ego network with
// their Phase II classification, or nil if node is out of range.
func (r *Result) NodeCommunities(node NodeID) []CommunityView {
	if int(node) >= len(r.inner.Egos) || r.inner.Egos[node] == nil {
		return nil
	}
	er := r.inner.Egos[node]
	out := make([]CommunityView, len(er.Comms))
	for i, c := range er.Comms {
		out[i] = CommunityView{
			Ego:       c.Ego,
			Members:   c.Members,
			Tightness: c.Tightness,
			Label:     Label(core.Argmax(c.Probs)),
			Probs:     c.Probs,
		}
	}
	return out
}

// LabelScore pairs a relationship type with its predicted probability.
type LabelScore = core.LabelScore

// MultiLabel returns every relationship type whose probability on the
// friendship {u,v} exceeds threshold, strongest first — the paper's
// multi-type relationship mining extension (future work in Section III).
func (r *Result) MultiLabel(u, v NodeID, threshold float64) []LabelScore {
	return r.inner.MultiLabel(u, v, threshold)
}

// Internal returns the underlying engine result for advanced inspection
// (community membership, tightness values, per-community probabilities,
// impurity detection via LocalCommunity.Outliers).
func (r *Result) Internal() *core.Result { return r.inner }

// Classify runs the full LoCEC pipeline on a dataset. Edges whose labels
// are revealed on the dataset form the training set; every edge receives a
// prediction.
func Classify(ds *social.Dataset, cfg Config) (*Result, error) {
	if ds == nil {
		return nil, fmt.Errorf("locec: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	coreCfg := core.Config{Seed: cfg.Seed, AgreementRule: cfg.AgreementRule}
	coreCfg.Division = core.DivisionConfig{
		Workers:    cfg.Workers,
		Seed:       cfg.Seed,
		GNPatience: cfg.GNPatience,
	}
	switch cfg.Detector {
	case DetectorLabelProp:
		coreCfg.Division.Detector = core.DetectorLabelProp
	case DetectorLouvain:
		coreCfg.Division.Detector = core.DetectorLouvain
	case DetectorClauset:
		coreCfg.Division.Detector = core.DetectorClauset
	case DetectorLShell:
		coreCfg.Division.Detector = core.DetectorLShell
	case DetectorLemon:
		coreCfg.Division.Detector = core.DetectorLemon
	}
	switch cfg.Variant {
	case VariantXGB:
		gw := cfg.GBDTWorkers
		if gw == 0 {
			gw = cfg.Workers
		}
		coreCfg.Classifier = &core.XGBClassifier{
			Config:  gbdt.Config{Rounds: cfg.Rounds, MaxDepth: cfg.MaxDepth, Seed: cfg.Seed},
			Seed:    cfg.Seed,
			Workers: gw,
		}
	default:
		coreCfg.Classifier = &core.CNNClassifier{
			K: cfg.K, Filters: cfg.Filters, Hidden: cfg.Hidden,
			Epochs: cfg.Epochs, Workers: cfg.Workers, Seed: cfg.Seed,
		}
	}
	coreCfg.Combiner = logreg.Config{Classes: social.NumLabels, Seed: cfg.Seed + 101}
	res, err := core.NewPipeline(coreCfg).Run(ds)
	if err != nil {
		return nil, err
	}
	return &Result{inner: res}, nil
}
