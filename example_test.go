package locec_test

import (
	"bytes"
	"fmt"

	"locec"
)

// ExampleSynthesize generates a WeChat-like network with planted social
// circles and reveals ground truth for a survey sample of the edges — the
// stand-in for the paper's proprietary trace.
func ExampleSynthesize() {
	net, err := locec.Synthesize(locec.SynthConfig{Users: 200, Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	net.RevealSurvey(0.4, 7)
	ds := net.Dataset
	fmt.Println("users:", ds.G.NumNodes())
	fmt.Println("friendships:", ds.G.NumEdges())
	fmt.Println("revealed labels:", len(ds.LabeledEdges()))
	// Output:
	// users: 200
	// friendships: 2114
	// revealed labels: 799
}

// ExampleNewBuilder assembles a dataset by hand: users, friendships,
// interaction counts and a revealed ground-truth label.
func ExampleNewBuilder() {
	b := locec.NewBuilder(5, 0)
	b.AddFriendship(0, 1).AddFriendship(1, 2).AddFriendship(0, 2)
	b.AddFriendship(2, 3).AddFriendship(3, 4)
	b.AddInteraction(0, 1, locec.DimMessage, 12)
	b.SetLabel(0, 1, locec.Colleague)
	ds, err := b.Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("users:", ds.G.NumNodes())
	fmt.Println("friendships:", ds.G.NumEdges())
	fmt.Println("labeled:", len(ds.LabeledEdges()))
	// Output:
	// users: 5
	// friendships: 5
	// labeled: 1
}

// ExampleClassify runs the full three-phase pipeline on a synthesized
// network and counts the classified friendships. The XGBoost variant keeps
// the example fast; drop the Variant field for the paper's CNN.
func ExampleClassify() {
	net, err := locec.Synthesize(locec.SynthConfig{Users: 200, Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	net.RevealSurvey(0.4, 7)
	res, err := locec.Classify(net.Dataset, locec.Config{
		Variant: locec.VariantXGB, Workers: 1, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	classified := 0
	net.Dataset.G.ForEachEdge(func(u, v locec.NodeID) {
		if res.Label(u, v).Valid() {
			classified++
		}
	})
	fmt.Println("classifier:", res.ClassifierName())
	fmt.Printf("classified %d of %d friendships\n", classified, net.Dataset.G.NumEdges())
	// Output:
	// classifier: LoCEC-XGB
	// classified 2114 of 2114 friendships
}

// ExampleResult_WriteArtifact is the offline/online split in miniature:
// train once, serialize the snapshot (graph, communities, model weights,
// every prediction) as a versioned binary artifact, restore it in another
// process with ReadArtifact, and get identical answers without retraining.
// In production the artifact is a file: `locec train -out model.locec`
// writes it and `locec-serve -artifact model.locec` cold-starts from it.
func ExampleResult_WriteArtifact() {
	net, err := locec.Synthesize(locec.SynthConfig{Users: 150, Seed: 2})
	if err != nil {
		fmt.Println(err)
		return
	}
	net.RevealSurvey(0.4, 7)
	res, err := locec.Classify(net.Dataset, locec.Config{
		Variant: locec.VariantXGB, Workers: 1, Seed: 2,
	})
	if err != nil {
		fmt.Println(err)
		return
	}

	var snapshot bytes.Buffer // a file in real deployments
	if err := res.WriteArtifact(&snapshot, net.Dataset); err != nil {
		fmt.Println(err)
		return
	}
	restored, err := locec.ReadArtifact(&snapshot)
	if err != nil {
		fmt.Println(err)
		return
	}

	identical := true
	net.Dataset.G.ForEachEdge(func(u, v locec.NodeID) {
		if restored.Label(u, v) != res.Label(u, v) {
			identical = false
		}
	})
	fmt.Println("restored without retraining:", restored.ClassifierName())
	fmt.Println("communities preserved:", restored.NumCommunities() == res.NumCommunities())
	fmt.Println("predictions identical:", identical)
	// Output:
	// restored without retraining: LoCEC-XGB
	// communities preserved: true
	// predictions identical: true
}
