package locec

import (
	"fmt"

	"locec/internal/graph"
	"locec/internal/social"
)

// Builder assembles a social.Dataset from user code: users with profile
// features, friendships, interaction counts, and revealed ground-truth
// labels for the supervised phases.
type Builder struct {
	featureWidth int
	features     [][]float64
	gb           *graph.Builder
	interactions map[uint64][]float64
	labels       map[uint64]Label
	revealed     map[uint64]bool
	err          error
}

// NewBuilder creates a builder for n users whose profile vectors have
// featureWidth dimensions (pass 0 if you have no profile features; a
// single constant dimension is used so downstream models have input).
func NewBuilder(n, featureWidth int) *Builder {
	if featureWidth <= 0 {
		featureWidth = 1
	}
	features := make([][]float64, n)
	for i := range features {
		features[i] = make([]float64, featureWidth)
	}
	return &Builder{
		featureWidth: featureWidth,
		features:     features,
		gb:           graph.NewBuilder(n),
		interactions: make(map[uint64][]float64),
		labels:       make(map[uint64]Label),
		revealed:     make(map[uint64]bool),
	}
}

func (b *Builder) setErr(err error) {
	if b.err == nil && err != nil {
		b.err = err
	}
}

// SetFeatures sets user u's profile vector. Width must match the builder's.
func (b *Builder) SetFeatures(u NodeID, f []float64) *Builder {
	if int(u) >= len(b.features) {
		b.setErr(fmt.Errorf("locec: user %d out of range", u))
		return b
	}
	if len(f) != b.featureWidth {
		b.setErr(fmt.Errorf("locec: feature width %d, want %d", len(f), b.featureWidth))
		return b
	}
	copy(b.features[u], f)
	return b
}

// AddFriendship records the undirected edge {u,v}.
func (b *Builder) AddFriendship(u, v NodeID) *Builder {
	b.setErr(b.gb.AddEdge(u, v))
	return b
}

// AddInteraction accumulates count interactions of the given dimension on
// the friendship {u,v}. The friendship must have been added first.
func (b *Builder) AddInteraction(u, v NodeID, dim InteractionDim, count float64) *Builder {
	if dim < 0 || dim >= NumInteractionDims {
		b.setErr(fmt.Errorf("locec: interaction dim %d out of range", dim))
		return b
	}
	if !b.gb.HasEdge(u, v) {
		b.setErr(fmt.Errorf("locec: interaction on missing friendship {%d,%d}", u, v))
		return b
	}
	k := (graph.Edge{U: u, V: v}).Key()
	vec, ok := b.interactions[k]
	if !ok {
		vec = make([]float64, NumInteractionDims)
		b.interactions[k] = vec
	}
	vec[dim] += count
	return b
}

// SetLabel records the known ground-truth relationship for {u,v} and
// reveals it to the learners (the survey sample).
func (b *Builder) SetLabel(u, v NodeID, l Label) *Builder {
	if !l.ValidGroundTruth() {
		b.setErr(fmt.Errorf("locec: invalid label %v", l))
		return b
	}
	if !b.gb.HasEdge(u, v) {
		b.setErr(fmt.Errorf("locec: label on missing friendship {%d,%d}", u, v))
		return b
	}
	k := (graph.Edge{U: u, V: v}).Key()
	b.labels[k] = l
	b.revealed[k] = true
	return b
}

// Build produces the dataset. Edges without a SetLabel call receive the
// placeholder ground truth Other and stay unrevealed — they are classified
// but never used for training or evaluation.
func (b *Builder) Build() (*social.Dataset, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := b.gb.Build()
	labels := make(map[uint64]Label, g.NumEdges())
	g.ForEachEdge(func(u, v NodeID) {
		k := (graph.Edge{U: u, V: v}).Key()
		if l, ok := b.labels[k]; ok {
			labels[k] = l
		} else {
			labels[k] = Other
		}
	})
	ds := &social.Dataset{
		G:            g,
		UserFeatures: b.features,
		Interactions: b.interactions,
		TrueLabels:   labels,
		Revealed:     b.revealed,
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
